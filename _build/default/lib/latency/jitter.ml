type model = { base_matrix : Matrix.t; sigma : float; rng : Random.State.t }

let make ?(sigma = 0.2) ?(seed = 0) base_matrix =
  if sigma < 0. then invalid_arg "Jitter.make: negative sigma";
  { base_matrix; sigma; rng = Random.State.make [| seed |] }

let base model = model.base_matrix

let gaussian rng =
  let u = 1. -. Random.State.float rng 1. in
  let v = Random.State.float rng 1. in
  sqrt (-2. *. log u) *. cos (2. *. Float.pi *. v)

let sample model =
  Matrix.init (Matrix.dim model.base_matrix) (fun i j ->
      Matrix.get model.base_matrix i j *. exp (model.sigma *. gaussian model.rng))

(* Inverse standard normal CDF, Acklam's algorithm. *)
let normal_quantile p =
  if p <= 0. || p >= 1. then invalid_arg "normal_quantile: p outside (0, 1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let p_high = 1. -. p_low in
  let horner coeffs x =
    Array.fold_left (fun acc coef -> (acc *. x) +. coef) 0. coeffs
  in
  let tail q = horner c q /. ((horner d q *. q) +. 1.) in
  if p < p_low then tail (sqrt (-2. *. log p))
  else if p <= p_high then begin
    let q = p -. 0.5 in
    let r = q *. q in
    horner a r *. q /. ((horner b r *. r) +. 1.)
  end
  else -.tail (sqrt (-2. *. log (1. -. p)))

let percentile_matrix model p =
  if p <= 0. || p >= 100. then
    invalid_arg "Jitter.percentile_matrix: percentile outside (0, 100)";
  let z = normal_quantile (p /. 100.) in
  let factor = exp (model.sigma *. z) in
  Matrix.init (Matrix.dim model.base_matrix) (fun i j ->
      Matrix.get model.base_matrix i j *. factor)

(* Standard normal CDF via the complementary error function. *)
let normal_cdf x = 0.5 *. (1. +. Float.erf (x /. sqrt 2.))

let breach_probability model ~delta ~d =
  if d <= 0. then 0.
  else if model.sigma = 0. then if d > delta then 1. else 0.
  else begin
    (* The planned length d corresponds to a percentile of the lognormal
       around median m; recover m, then P(realised > delta). *)
    let median = d in
    if delta <= 0. then 1.
    else 1. -. normal_cdf (log (delta /. median) /. model.sigma)
  end
