(** Minimum Set Cover.

    The problem the paper reduces from in its NP-completeness proof
    (Section III): given a universe [P] of [n] elements and a collection
    [Q] of subsets, find the fewest subsets whose union is [P]. Provides
    the classic greedy ln(n)-approximation and an exact branch-and-bound
    solver for the small instances used to exercise {!Reduction}. *)

type t
(** A set cover instance. *)

val make : universe:int -> subsets:int list array -> t
(** [make ~universe ~subsets] with elements [0 .. universe-1].

    @raise Invalid_argument if an element is out of range, a subset is
    empty, or the union of subsets does not cover the universe (such
    instances have no cover; rejecting them early keeps every solver
    total). *)

val universe : t -> int
val num_subsets : t -> int
val subset : t -> int -> int list
(** Elements of one subset, ascending. *)

val is_cover : t -> int list -> bool
(** Whether the given subset indices cover the whole universe. *)

val greedy : t -> int list
(** Greedy cover: repeatedly take the subset covering the most uncovered
    elements (ties by lowest index). Returns subset indices in selection
    order. Classic H(n)-approximation. *)

val optimal : ?node_limit:int -> t -> int list
(** Exact minimum cover by branch-and-bound on the greedy seed.

    @raise Failure if [node_limit] (default [10_000_000]) is exceeded. *)

val covers_of_size : t -> int -> bool
(** [covers_of_size t k] — does a cover of size at most [k] exist? The
    decision version used by the reduction. *)
