lib/setcover/setcover.ml: Array Fun List Printf
