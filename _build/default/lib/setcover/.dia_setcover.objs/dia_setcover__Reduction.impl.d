lib/setcover/reduction.ml: Array Dia_core Dia_latency Fun List Printf Setcover
