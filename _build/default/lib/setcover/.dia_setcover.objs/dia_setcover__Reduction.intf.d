lib/setcover/reduction.mli: Dia_core Setcover
