lib/setcover/setcover.mli:
