(** The NP-completeness reduction of Theorem 1 (Section III).

    Transforms a Minimum Set Cover instance [(P, Q, K)] into a client
    assignment instance: one client per element of [P], and [K] groups of
    [|Q|] servers where server [j] of every group corresponds to subset
    [Q_j]. A client is linked (length 1) to server [s^l_j] iff its
    element belongs to [Q_j]; servers in different groups are all linked
    (length 1); every other distance follows from shortest-path routing.
    Then [Q] has a cover of size at most [K] iff the instance admits an
    assignment with maximum interaction-path length at most 3.

    Both directions are constructive here: {!assignment_of_cover} builds
    the bounded assignment from a cover, and {!cover_of_assignment} reads
    a cover back off a bounded assignment — exercising the actual proof,
    not just the statement. *)

type t
(** A built reduction instance. *)

val build : Setcover.t -> k:int -> t
(** Construct the client assignment instance for bound [K = k].

    @raise Invalid_argument if [k < 1]. *)

val problem : t -> Dia_core.Problem.t
(** The resulting client assignment instance (clients are element
    indices; servers are indexed so that server [l * m + j] is the [j]-th
    server of group [l]). *)

val bound : t -> float
(** The decision bound on the maximum interaction-path length: [3.]. *)

val server_role : t -> int -> int * int
(** [server_role t s] is [(group, subset)] of server index [s]. *)

val assignment_of_cover : t -> int list -> Dia_core.Assignment.t
(** Forward direction: from a cover of size at most [K], an assignment
    whose maximum interaction-path length is at most 3 (the paper's
    step-by-step construction, one server group per cover subset).

    @raise Invalid_argument if the argument is not a cover or is larger
    than [K]. *)

val cover_of_assignment : t -> Dia_core.Assignment.t -> int list
(** Backward direction: the subsets [Q_j] such that some server [s^l_j]
    has at least one assigned client. When the assignment's maximum
    interaction-path length is at most 3, this is a cover of size at most
    [K] (Theorem 1's argument). *)

val holds : Setcover.t -> k:int -> bool
(** Verify the iff on a concrete instance using exact solvers on both
    sides: [covers_of_size sc k] must coincide with "the built instance
    has an optimal maximum interaction-path length <= 3". Returns [true]
    when the equivalence holds. Exponential — small instances only. *)
