module Matrix = Dia_latency.Matrix
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment

type t = {
  instance : Setcover.t;
  k : int;
  problem : Problem.t;
}

(* Distance placeholder for node pairs with no routing path (possible when
   k = 1 and subsets are disjoint); any value much larger than 3 keeps the
   proof's case analysis intact. *)
let far = 1.0e6

let build instance ~k =
  if k < 1 then invalid_arg "Reduction.build: k must be >= 1";
  let n = Setcover.universe instance in
  let m = Setcover.num_subsets instance in
  let nodes = n + (m * k) in
  (* Client i is node i; server (group l, subset j) is node n + l*m + j. *)
  let server_node l j = n + (l * m) + j in
  let adjacency = Matrix.init nodes (fun _ _ -> far) in
  for j = 0 to m - 1 do
    List.iter
      (fun element ->
        for l = 0 to k - 1 do
          Matrix.set adjacency element (server_node l j) 1.
        done)
      (Setcover.subset instance j)
  done;
  for l1 = 0 to k - 1 do
    for l2 = l1 + 1 to k - 1 do
      for j1 = 0 to m - 1 do
        for j2 = 0 to m - 1 do
          Matrix.set adjacency (server_node l1 j1) (server_node l2 j2) 1.
        done
      done
    done
  done;
  let latency = Dia_latency.Shortest_path.floyd_warshall adjacency in
  let servers = Array.init (m * k) (fun s -> n + s) in
  let clients = Array.init n Fun.id in
  let problem = Problem.make ~latency ~servers ~clients () in
  { instance; k; problem }

let problem t = t.problem
let bound _ = 3.

let server_role t s =
  let m = Setcover.num_subsets t.instance in
  if s < 0 || s >= m * t.k then
    invalid_arg (Printf.sprintf "Reduction.server_role: server %d out of range" s);
  (s / m, s mod m)

let assignment_of_cover t cover =
  if not (Setcover.is_cover t.instance cover) then
    invalid_arg "Reduction.assignment_of_cover: not a cover";
  if List.length cover > t.k then
    invalid_arg "Reduction.assignment_of_cover: cover larger than K";
  let n = Setcover.universe t.instance in
  let m = Setcover.num_subsets t.instance in
  let result = Array.make n (-1) in
  (* One unused server group per cover subset, exactly as in the proof. *)
  List.iteri
    (fun group j ->
      List.iter
        (fun element ->
          if result.(element) < 0 then result.(element) <- (group * m) + j)
        (Setcover.subset t.instance j))
    cover;
  Assignment.of_array t.problem result

let cover_of_assignment t a =
  let m = Setcover.num_subsets t.instance in
  let used = Assignment.used_servers t.problem a in
  List.sort_uniq compare (List.map (fun s -> s mod m) (Array.to_list used))

let holds instance ~k =
  let cover_exists = Setcover.covers_of_size instance k in
  let reduction = build instance ~k in
  let optimal = Dia_core.Brute_force.optimal_value reduction.problem in
  let assignment_exists = optimal <= 3. +. 1e-9 in
  cover_exists = assignment_exists
