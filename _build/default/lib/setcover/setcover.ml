type t = { universe : int; subsets : int list array }

let make ~universe ~subsets =
  if universe < 0 then invalid_arg "Setcover.make: negative universe";
  let covered = Array.make universe false in
  Array.iteri
    (fun idx subset ->
      if subset = [] then
        invalid_arg (Printf.sprintf "Setcover.make: subset %d is empty" idx);
      List.iter
        (fun e ->
          if e < 0 || e >= universe then
            invalid_arg
              (Printf.sprintf "Setcover.make: element %d out of range [0, %d)" e universe);
          covered.(e) <- true)
        subset)
    subsets;
  if not (Array.for_all Fun.id covered) then
    invalid_arg "Setcover.make: subsets do not cover the universe";
  { universe; subsets = Array.map (List.sort_uniq compare) subsets }

let universe t = t.universe
let num_subsets t = Array.length t.subsets

let subset t i =
  if i < 0 || i >= num_subsets t then
    invalid_arg (Printf.sprintf "Setcover.subset: index %d out of range" i);
  t.subsets.(i)

let is_cover t chosen =
  let covered = Array.make t.universe false in
  List.iter
    (fun i -> List.iter (fun e -> covered.(e) <- true) (subset t i))
    chosen;
  Array.for_all Fun.id covered

let greedy t =
  let covered = Array.make t.universe false in
  let remaining = ref t.universe in
  let chosen = ref [] in
  while !remaining > 0 do
    let gain i =
      List.length (List.filter (fun e -> not covered.(e)) t.subsets.(i))
    in
    let best = ref 0 in
    for i = 1 to num_subsets t - 1 do
      if gain i > gain !best then best := i
    done;
    (* The constructor guarantees full coverage, so the best gain is
       always positive here. *)
    assert (gain !best > 0);
    List.iter
      (fun e ->
        if not covered.(e) then begin
          covered.(e) <- true;
          decr remaining
        end)
      t.subsets.(!best);
    chosen := !best :: !chosen
  done;
  List.rev !chosen

exception Node_limit

let optimal ?(node_limit = 10_000_000) t =
  let m = num_subsets t in
  let best = ref (greedy t) in
  let cover_count = Array.make t.universe 0 in
  let uncovered = ref t.universe in
  let chosen = ref [] in
  let nodes = ref 0 in
  (* Branch on the lowest uncovered element: one branch per subset that
     contains it. Complete and avoids permutation blowup. *)
  let rec search depth =
    incr nodes;
    if !nodes > node_limit then raise Node_limit;
    if depth < List.length !best then begin
      if !uncovered = 0 then best := List.rev !chosen
      else begin
        let e = ref 0 in
        while cover_count.(!e) > 0 do
          incr e
        done;
        for i = 0 to m - 1 do
          if List.mem !e t.subsets.(i) then begin
            List.iter
              (fun x ->
                if cover_count.(x) = 0 then decr uncovered;
                cover_count.(x) <- cover_count.(x) + 1)
              t.subsets.(i);
            chosen := i :: !chosen;
            search (depth + 1);
            chosen := List.tl !chosen;
            List.iter
              (fun x ->
                cover_count.(x) <- cover_count.(x) - 1;
                if cover_count.(x) = 0 then incr uncovered)
              t.subsets.(i)
          end
        done
      end
    end
  in
  (try search 0
   with Node_limit ->
     failwith (Printf.sprintf "Setcover.optimal: node limit %d exceeded" node_limit));
  !best

let covers_of_size t k = List.length (optimal t) <= k
