(* Tests for Dia_core.Dynamic: online joins/leaves/rebalancing. *)

module Matrix = Dia_latency.Matrix
module Synthetic = Dia_latency.Synthetic
module Dynamic = Dia_core.Dynamic
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Algorithm = Dia_core.Algorithm

let matrix = Synthetic.internet_like ~seed:21 80
let servers = Dia_placement.Placement.random ~seed:21 ~k:6 ~n:80

let fresh ?capacity () = Dynamic.create ?capacity matrix ~servers

let test_empty_session () =
  let t = fresh () in
  Alcotest.(check int) "no clients" 0 (Dynamic.num_clients t);
  Alcotest.(check bool) "objective -inf" true (Dynamic.objective t = neg_infinity)

let test_join_tracks_objective () =
  let t = fresh () in
  let id = Dynamic.join t ~node:3 in
  Alcotest.(check int) "one client" 1 (Dynamic.num_clients t);
  let s = Dynamic.server_of t id in
  Alcotest.(check (float 1e-9)) "objective is round trip"
    (2. *. Matrix.get matrix 3 servers.(s))
    (Dynamic.objective t)

let test_single_join_picks_nearest () =
  (* With no other clients, minimising the objective = minimising the
     round trip = joining the nearest server. *)
  let t = fresh () in
  let id = Dynamic.join t ~node:7 in
  let s = Dynamic.server_of t id in
  Array.iteri
    (fun s' node ->
      Alcotest.(check bool)
        (Printf.sprintf "server %d not closer" s')
        true
        (Matrix.get matrix 7 servers.(s) <= Matrix.get matrix 7 node +. 1e-12))
    servers

let test_snapshot_matches_incremental_objective () =
  let t = fresh () in
  for node = 0 to 39 do
    ignore (Dynamic.join t ~node)
  done;
  let p, a = Dynamic.snapshot t in
  Alcotest.(check (float 1e-6)) "objectives agree"
    (Objective.max_interaction_path p a)
    (Dynamic.objective t)

let test_leave_restores_state () =
  let t = fresh () in
  let permanent = Dynamic.join t ~node:0 in
  let d_before = Dynamic.objective t in
  let visitor = Dynamic.join t ~node:50 in
  Dynamic.leave t visitor;
  Alcotest.(check int) "one client left" 1 (Dynamic.num_clients t);
  Alcotest.(check (float 1e-9)) "objective restored" d_before (Dynamic.objective t);
  Alcotest.(check bool) "permanent client still assigned" true
    (Dynamic.server_of t permanent >= 0)

let test_leave_twice_rejected () =
  let t = fresh () in
  let id = Dynamic.join t ~node:0 in
  Dynamic.leave t id;
  Alcotest.(check bool) "raises" true
    (try
       Dynamic.leave t id;
       false
     with Invalid_argument _ -> true)

let test_capacity_enforced () =
  let t = fresh ~capacity:1 () in
  (* 6 servers, capacity 1: the 7th join must fail. *)
  for node = 0 to 5 do
    ignore (Dynamic.join t ~node)
  done;
  Alcotest.(check bool) "raises when saturated" true
    (try
       ignore (Dynamic.join t ~node:6);
       false
     with Failure _ -> true)

let test_rebalance_improves_after_churn () =
  let t = fresh () in
  let rng = Random.State.make [| 5 |] in
  let ids = ref [] in
  (* Churn: join everyone, remove a random half, join more. *)
  for node = 0 to 79 do
    ids := Dynamic.join t ~node :: !ids
  done;
  List.iter
    (fun id -> if Random.State.bool rng then Dynamic.leave t id)
    !ids;
  for node = 0 to 19 do
    ignore (Dynamic.join t ~node)
  done;
  let before = Dynamic.objective t in
  let moves = Dynamic.rebalance t in
  let after = Dynamic.objective t in
  Alcotest.(check bool) "not worse" true (after <= before +. 1e-9);
  let stats = Dynamic.stats t in
  Alcotest.(check int) "moves counted" moves stats.Dynamic.moves;
  (* After full rebalance, no single move improves (verified offline). *)
  let p, a = Dynamic.snapshot t in
  let arr = Assignment.to_array a in
  let improvable = ref false in
  let d = Objective.max_interaction_path p a in
  for c = 0 to Problem.num_clients p - 1 do
    let original = arr.(c) in
    for s = 0 to Problem.num_servers p - 1 do
      if s <> original then begin
        arr.(c) <- s;
        if Objective.max_interaction_path p (Assignment.unsafe_of_array arr)
           < d -. 1e-9
        then improvable := true;
        arr.(c) <- original
      end
    done
  done;
  Alcotest.(check bool) "locally optimal" false !improvable

let test_rebalance_respects_move_budget () =
  let t = fresh () in
  for node = 0 to 59 do
    ignore (Dynamic.join t ~node)
  done;
  let moves = Dynamic.rebalance ~max_moves:2 t in
  Alcotest.(check bool) "at most 2 moves" true (moves <= 2)

let test_online_vs_offline_quality () =
  (* Greedy joins + rebalance should land in the same quality region as
     the offline Distributed-Greedy on the same membership. *)
  let t = fresh () in
  for node = 0 to 79 do
    ignore (Dynamic.join t ~node)
  done;
  ignore (Dynamic.rebalance t);
  let p, _ = Dynamic.snapshot t in
  let offline =
    Objective.max_interaction_path p (Algorithm.run Algorithm.Distributed_greedy p)
  in
  let online = Dynamic.objective t in
  Alcotest.(check bool)
    (Printf.sprintf "online %.1f within 30%% of offline %.1f" online offline)
    true
    (online <= offline *. 1.3 +. 1e-9)

let test_stats_accumulate () =
  let t = fresh () in
  let a = Dynamic.join t ~node:1 in
  let _ = Dynamic.join t ~node:2 in
  Dynamic.leave t a;
  let stats = Dynamic.stats t in
  Alcotest.(check int) "joins" 2 stats.Dynamic.joins;
  Alcotest.(check int) "leaves" 1 stats.Dynamic.leaves

let test_fail_server_migrates_clients () =
  let t = fresh () in
  for node = 0 to 59 do
    ignore (Dynamic.join t ~node)
  done;
  (* Fail a server that actually hosts someone. *)
  let victim =
    let _, a = Dynamic.snapshot t in
    Assignment.server_of a 0
  in
  let before = Dynamic.num_clients t in
  let migrated = Dynamic.fail_server t victim in
  Alcotest.(check int) "population preserved" before (Dynamic.num_clients t);
  Alcotest.(check bool) "someone migrated" true (migrated > 0);
  let p, a = Dynamic.snapshot t in
  Array.iteri
    (fun c s ->
      Alcotest.(check bool)
        (Printf.sprintf "client %d not on failed server" c)
        true (s <> victim))
    (Assignment.to_array a);
  Alcotest.(check (float 1e-6)) "objective still consistent"
    (Objective.max_interaction_path p a)
    (Dynamic.objective t);
  Alcotest.(check int) "one server down" 5
    (List.length (Dynamic.active_servers t))

let test_fail_server_twice_rejected () =
  let t = fresh () in
  ignore (Dynamic.join t ~node:0);
  ignore (Dynamic.fail_server t 1);
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dynamic.fail_server t 1);
       false
     with Invalid_argument _ -> true)

let test_fail_server_capacity_exhaustion () =
  (* 6 servers x capacity 1, 6 clients: failing any server leaves nowhere
     to put its client. *)
  let t = fresh ~capacity:1 () in
  for node = 0 to 5 do
    ignore (Dynamic.join t ~node)
  done;
  let loaded =
    (* Some server certainly has a client. *)
    let p, a = Dynamic.snapshot t in
    ignore p;
    Assignment.server_of a 0
  in
  Alcotest.(check bool) "fails cleanly" true
    (try
       ignore (Dynamic.fail_server t loaded);
       false
     with Failure _ -> true);
  (* The failed flag must have been rolled back. *)
  Alcotest.(check int) "all servers still active" 6
    (List.length (Dynamic.active_servers t))

let test_recover_server () =
  let t = fresh () in
  for node = 0 to 29 do
    ignore (Dynamic.join t ~node)
  done;
  ignore (Dynamic.fail_server t 0);
  Dynamic.recover_server t 0;
  Alcotest.(check int) "all active again" 6 (List.length (Dynamic.active_servers t));
  (* Rebalance may move clients back onto the recovered server. *)
  ignore (Dynamic.rebalance t);
  let p, a = Dynamic.snapshot t in
  Alcotest.(check (float 1e-6)) "objective consistent after recovery"
    (Objective.max_interaction_path p a)
    (Dynamic.objective t)

let prop_random_operation_sequences_stay_consistent =
  (* Model-based stress: a random sequence of joins / leaves / rebalances /
     failures / recoveries must keep the incremental objective equal to the
     snapshot-recomputed one, loads within capacity, and no client on a
     failed server. *)
  QCheck.Test.make ~name:"random op sequences keep invariants" ~count:25
    QCheck.(pair (int_bound 1_000_000) (int_range 10 120))
    (fun (seed, steps) ->
      let rng = Random.State.make [| seed |] in
      let t = Dynamic.create ~capacity:30 matrix ~servers in
      let live = ref [] in
      let failed = ref [] in
      for _ = 1 to steps do
        match Random.State.int rng 10 with
        | 0 | 1 | 2 | 3 | 4 ->
            (try live := Dynamic.join t ~node:(Random.State.int rng 80) :: !live
             with Failure _ -> ())
        | 5 | 6 -> (
            match !live with
            | [] -> ()
            | id :: rest ->
                Dynamic.leave t id;
                live := rest)
        | 7 -> ignore (Dynamic.rebalance ~max_moves:3 t)
        | 8 ->
            let s = Random.State.int rng 6 in
            if not (List.mem s !failed) && List.length !failed < 4 then (
              try
                ignore (Dynamic.fail_server t s);
                failed := s :: !failed
              with Failure _ -> Dynamic.recover_server t s |> ignore)
        | _ -> (
            match !failed with
            | [] -> ()
            | s :: rest ->
                Dynamic.recover_server t s;
                failed := rest)
      done;
      if Dynamic.num_clients t = 0 then true
      else begin
        let p, a = Dynamic.snapshot t in
        let objective_ok =
          Float.abs
            (Objective.max_interaction_path p a -. Dynamic.objective t)
          < 1e-6
        in
        let capacity_ok = Assignment.respects_capacity p a in
        let no_failed_hosting =
          Array.for_all
            (fun s -> not (List.mem s !failed))
            (Assignment.to_array a)
        in
        objective_ok && capacity_ok && no_failed_hosting
      end)

let prop_load_objective_bit_identical_to_scratch =
  (* The incremental D_load/LB_load cache: after every operation of a
     random join/leave/move/fail/promote/recover/drift/rebalance
     sequence, the cached load-aware objective and bound must be
     bit-identical (=, not within epsilon) to a from-scratch recompute
     over the member table; a restore round-trip must reproduce both;
     and under [Constant 0.] the load-aware objective must collapse to
     the plain one bit-for-bit. *)
  let delay_of = function
    | 0 -> Dia_core.Delay.Constant 0.
    | 1 -> Dia_core.Delay.Constant 2.
    | 2 -> Dia_core.Delay.Linear { base = 0.5; coeff = 0.25 }
    | 3 -> Dia_core.Delay.Queueing { mu = 40. }
    (* mu = 6 saturates routinely under this churn — the total-order
       convention past the pole is exercised, not just defined. *)
    | _ -> Dia_core.Delay.Queueing { mu = 6. }
  in
  QCheck.Test.make
    ~name:"incremental D_load/LB_load bit-identical to scratch" ~count:25
    QCheck.(
      triple (int_bound 1_000_000) (int_range 10 120) (int_bound 4))
    (fun (seed, steps, model) ->
      let delay = delay_of model in
      let rng = Random.State.make [| seed; 0x10ad |] in
      let t = Dynamic.create ~capacity:30 ~delay matrix ~servers in
      let live = ref [] in
      let failed = ref [] in
      let consistent () =
        Dynamic.objective_load t = Dynamic.objective_load_scratch t
        && Dynamic.lower_bound_load t = Dynamic.lower_bound_load_scratch t
        && (model <> 0 || Dynamic.objective_load t = Dynamic.objective t)
      in
      let ok = ref true in
      for _ = 1 to steps do
        (match Random.State.int rng 13 with
        | 0 | 1 | 2 | 3 ->
            (try live := Dynamic.join t ~node:(Random.State.int rng 80) :: !live
             with Failure _ -> ())
        | 4 | 5 -> (
            match !live with
            | [] -> ()
            | id :: rest ->
                Dynamic.leave t id;
                live := rest)
        | 6 -> (
            match !live with
            | [] -> ()
            | id :: _ -> (
                let s = Random.State.int rng 6 in
                try Dynamic.move t id s with Invalid_argument _ | Failure _ -> ()))
        | 7 -> ignore (Dynamic.rebalance ~max_moves:3 t)
        | 8 ->
            let s = Random.State.int rng 6 in
            if not (List.mem s !failed) && List.length !failed < 4 then (
              try
                (* Stranded orphans leave the session silently here —
                   the report already accounts for them. *)
                ignore (Dynamic.fail_server_report t s);
                failed := s :: !failed;
                live :=
                  List.filter
                    (fun id ->
                      match Dynamic.server_of t id with
                      | _ -> true
                      | exception Invalid_argument _ -> false)
                    !live
              with Invalid_argument _ -> ())
        | 9 ->
            (* Standby promotion: arm the canonical map, then O(1)-fail
               a random live server through it. *)
            let s = Random.State.int rng 6 in
            if not (List.mem s !failed) && List.length !failed < 4 then (
              ignore (Dynamic.refresh_standbys t);
              try
                ignore (Dynamic.promote_standby t s);
                failed := s :: !failed;
                live :=
                  List.filter
                    (fun id ->
                      match Dynamic.server_of t id with
                      | _ -> true
                      | exception Invalid_argument _ -> false)
                    !live
              with Invalid_argument _ -> ())
        | 10 -> (
            match !failed with
            | [] -> ()
            | s :: rest ->
                Dynamic.recover_server t s;
                failed := rest)
        | _ ->
            let s = Random.State.int rng 6 in
            Dynamic.set_drift t ~server:s
              ~factor:(0.5 +. Random.State.float rng 1.5));
        if not (consistent ()) then ok := false
      done;
      (* Restore round-trip: the rebuilt session must reproduce the
         load-aware numbers bit-for-bit. *)
      let drift =
        List.filter_map
          (fun s ->
            let f = Dynamic.drift t s in
            if f <> 1.0 then Some (s, f) else None)
          (List.init 6 Fun.id)
      in
      let t' =
        Dynamic.restore ~capacity:30 ~delay matrix ~servers
          ~members:(Dynamic.members t) ~next_id:(Dynamic.next_id t)
          ~failed:(Dynamic.failed_servers t) ~drift ~stats:(Dynamic.stats t)
      in
      !ok
      && Dynamic.objective_load t' = Dynamic.objective_load t
      && Dynamic.lower_bound_load t' = Dynamic.lower_bound_load t)

let test_rebalance_zero_budget_noop () =
  let t = fresh () in
  for node = 0 to 29 do
    ignore (Dynamic.join t ~node)
  done;
  let members = Dynamic.members t in
  let objective = Dynamic.objective t in
  Alcotest.(check int) "zero budget is a no-op" 0 (Dynamic.rebalance ~max_moves:0 t);
  Alcotest.(check int) "negative budget is a no-op" 0
    (Dynamic.rebalance ~max_moves:(-3) t);
  Alcotest.(check bool) "membership untouched" true (Dynamic.members t = members);
  Alcotest.(check bool) "objective untouched" true
    (Dynamic.objective t = objective);
  Alcotest.(check int) "no moves counted" 0 (Dynamic.stats t).Dynamic.moves

let test_fail_last_server_rejected () =
  let m = Synthetic.internet_like ~seed:3 10 in
  let t = Dynamic.create m ~servers:[| 1; 4 |] in
  ignore (Dynamic.join t ~node:0);
  ignore (Dynamic.fail_server t 0);
  (match Dynamic.fail_server t 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "failing the last live server must be rejected");
  (match Dynamic.fail_server_report t 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fail_server_report must also reject the last server");
  Alcotest.(check int) "session still serves" 1 (Dynamic.num_clients t)

let test_capacitated_failover_strands () =
  (* Both servers full: the orphans of a failure have nowhere to go.
     fail_server refuses; fail_server_report strands them instead —
     reported, never silently dropped. *)
  let m = Synthetic.internet_like ~seed:4 12 in
  let t = Dynamic.create ~capacity:3 m ~servers:[| 0; 6 |] in
  let ids = List.init 6 (fun node -> Dynamic.join t ~node) in
  let victim = Dynamic.server_of t (List.hd ids) in
  (match Dynamic.fail_server t victim with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "fail_server must refuse when orphans cannot be re-homed");
  Alcotest.(check int) "refusal left everyone connected" 6 (Dynamic.num_clients t);
  let r = Dynamic.fail_server_report t victim in
  Alcotest.(check int) "nobody migrated" 0 r.Dynamic.migrated;
  Alcotest.(check int) "every orphan reported stranded" 3
    (List.length r.Dynamic.stranded);
  List.iter
    (fun (id, _node) ->
      match Dynamic.server_of t id with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "stranded client still connected")
    r.Dynamic.stranded;
  Alcotest.(check int) "survivors stay connected" 3 (Dynamic.num_clients t)

let test_capacitated_failover_partial_stranding () =
  (* Room for some orphans but not all: the ones that fit migrate, the
     rest are stranded, and migrated + stranded accounts for everyone. *)
  let m = Synthetic.internet_like ~seed:5 12 in
  let t = Dynamic.create ~capacity:4 m ~servers:[| 0; 6 |] in
  List.iter (fun node -> ignore (Dynamic.join t ~node)) [ 1; 2; 3; 4; 5; 7 ];
  let load0 = Dynamic.load t 0 and load1 = Dynamic.load t 1 in
  Alcotest.(check int) "six clients placed" 6 (load0 + load1);
  let victim = if load0 >= load1 then 0 else 1 in
  let orphans = Dynamic.load t victim in
  let spare = 4 - Dynamic.load t (1 - victim) in
  let r = Dynamic.fail_server_report t victim in
  Alcotest.(check int) "those that fit migrated" (min orphans spare)
    r.Dynamic.migrated;
  Alcotest.(check int) "the rest stranded" (max 0 (orphans - spare))
    (List.length r.Dynamic.stranded);
  Alcotest.(check int) "everyone accounted for" orphans
    (r.Dynamic.migrated + List.length r.Dynamic.stranded)

let test_drift_rescales_and_snapshot_consistent () =
  let t = fresh () in
  for node = 0 to 19 do
    ignore (Dynamic.join t ~node)
  done;
  let before = Dynamic.objective t in
  Dynamic.set_drift t ~server:2 ~factor:2.0;
  Alcotest.(check (float 1e-9)) "drift getter" 2.0 (Dynamic.drift t 2);
  let p, a = Dynamic.snapshot t in
  Alcotest.(check (float 1e-6)) "snapshot materialises drifted distances"
    (Objective.max_interaction_path p a)
    (Dynamic.objective t);
  Dynamic.set_drift t ~server:2 ~factor:1.0;
  Alcotest.(check (float 1e-9)) "drift reset restores the objective" before
    (Dynamic.objective t);
  (match Dynamic.set_drift t ~server:99 ~factor:2. with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-range server accepted");
  match Dynamic.set_drift t ~server:0 ~factor:0. with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "non-positive factor accepted"

let test_restore_roundtrip () =
  let t = fresh ~capacity:10 () in
  let ids = List.init 25 (fun node -> Dynamic.join t ~node:(node mod 80)) in
  List.iteri (fun i id -> if i mod 5 = 0 then Dynamic.leave t id) ids;
  ignore (Dynamic.fail_server t 1);
  Dynamic.set_drift t ~server:3 ~factor:1.5;
  ignore (Dynamic.rebalance ~max_moves:4 t);
  let drift =
    List.filter_map
      (fun s ->
        let f = Dynamic.drift t s in
        if f <> 1.0 then Some (s, f) else None)
      (List.init 6 Fun.id)
  in
  let t' =
    Dynamic.restore ~capacity:10 matrix ~servers ~members:(Dynamic.members t)
      ~next_id:(Dynamic.next_id t) ~failed:(Dynamic.failed_servers t) ~drift
      ~stats:(Dynamic.stats t)
  in
  Alcotest.(check bool) "members equal" true (Dynamic.members t' = Dynamic.members t);
  Alcotest.(check bool) "failed equal" true
    (Dynamic.failed_servers t' = Dynamic.failed_servers t);
  Alcotest.(check bool) "objective equal" true
    (Dynamic.objective t' = Dynamic.objective t);
  Alcotest.(check bool) "stats equal" true (Dynamic.stats t' = Dynamic.stats t);
  let a = Dynamic.join t ~node:11 and b = Dynamic.join t' ~node:11 in
  Alcotest.(check int) "id counter preserved" a b;
  Alcotest.(check int) "restored session places joins identically"
    (Dynamic.server_of t a) (Dynamic.server_of t' b)

let test_move_and_load () =
  let t = fresh ~capacity:5 () in
  let id = Dynamic.join t ~node:2 in
  let s = Dynamic.server_of t id in
  let s' = (s + 1) mod 6 in
  Dynamic.move t id s';
  Alcotest.(check int) "moved" s' (Dynamic.server_of t id);
  Alcotest.(check int) "load arrived" 1 (Dynamic.load t s');
  Alcotest.(check int) "load left" 0 (Dynamic.load t s);
  Alcotest.(check int) "move counted" 1 (Dynamic.stats t).Dynamic.moves;
  Dynamic.move t id s';
  Alcotest.(check int) "same-server move is a free no-op" 1
    (Dynamic.stats t).Dynamic.moves;
  ignore (Dynamic.fail_server t s);
  match Dynamic.move t id s with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "move onto a failed server accepted"

let suite =
  [
    Alcotest.test_case "empty session" `Quick test_empty_session;
    Alcotest.test_case "zero move budget is a guaranteed no-op" `Quick
      test_rebalance_zero_budget_noop;
    Alcotest.test_case "last live server cannot be failed" `Quick
      test_fail_last_server_rejected;
    Alcotest.test_case "capacitated failover strands reported orphans" `Quick
      test_capacitated_failover_strands;
    Alcotest.test_case "partial stranding accounts for every orphan" `Quick
      test_capacitated_failover_partial_stranding;
    Alcotest.test_case "latency drift rescales and stays snapshot-consistent"
      `Quick test_drift_rescales_and_snapshot_consistent;
    Alcotest.test_case "restore round-trips the session" `Quick
      test_restore_roundtrip;
    Alcotest.test_case "forced move updates loads and stats" `Quick
      test_move_and_load;
    Alcotest.test_case "join tracks the objective" `Quick test_join_tracks_objective;
    Alcotest.test_case "first join picks the nearest server" `Quick
      test_single_join_picks_nearest;
    Alcotest.test_case "snapshot matches incremental objective" `Quick
      test_snapshot_matches_incremental_objective;
    Alcotest.test_case "leave restores state" `Quick test_leave_restores_state;
    Alcotest.test_case "double leave rejected" `Quick test_leave_twice_rejected;
    Alcotest.test_case "capacity enforced on join" `Quick test_capacity_enforced;
    Alcotest.test_case "rebalance improves after churn" `Quick
      test_rebalance_improves_after_churn;
    Alcotest.test_case "rebalance respects move budget" `Quick
      test_rebalance_respects_move_budget;
    Alcotest.test_case "online quality near offline" `Quick test_online_vs_offline_quality;
    Alcotest.test_case "stats accumulate" `Quick test_stats_accumulate;
    Alcotest.test_case "server failure migrates clients" `Quick
      test_fail_server_migrates_clients;
    Alcotest.test_case "double failure rejected" `Quick test_fail_server_twice_rejected;
    Alcotest.test_case "failure with exhausted capacity rolls back" `Quick
      test_fail_server_capacity_exhaustion;
    Alcotest.test_case "server recovery" `Quick test_recover_server;
    QCheck_alcotest.to_alcotest prop_random_operation_sequences_stay_consistent;
    QCheck_alcotest.to_alcotest prop_load_objective_bit_identical_to_scratch;
  ]
