(* Tests for Dia_core.Interaction. *)

module Synthetic = Dia_latency.Synthetic
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Interaction = Dia_core.Interaction

let instance seed ~n ~k =
  let m = Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  Problem.all_nodes_clients m ~servers

let assignment p = Dia_core.Greedy.assign p

let test_path_decomposition_sums () =
  let p = instance 1 ~n:30 ~k:4 in
  let a = assignment p in
  for ci = 0 to 5 do
    for cj = 0 to 5 do
      let path = Interaction.path p a ci cj in
      Alcotest.(check (float 1e-9)) "legs sum to length"
        (path.Interaction.client_leg +. path.Interaction.server_leg
        +. path.Interaction.exit_leg)
        path.Interaction.length;
      Alcotest.(check (float 1e-9)) "matches objective's path"
        (Objective.path_length p a ci cj)
        path.Interaction.length
    done
  done

let test_worst_pair_is_objective () =
  let p = instance 2 ~n:40 ~k:5 in
  let a = assignment p in
  match Interaction.worst_pairs ~count:3 p a with
  | worst :: rest ->
      Alcotest.(check (float 1e-9)) "head is D(A)"
        (Objective.max_interaction_path p a)
        worst.Interaction.length;
      List.iter
        (fun next ->
          Alcotest.(check bool) "descending" true
            (next.Interaction.length <= worst.Interaction.length +. 1e-9))
        rest
  | [] -> Alcotest.fail "no pairs"

let test_client_worst_bounded_by_objective () =
  let p = instance 3 ~n:30 ~k:4 in
  let a = assignment p in
  let d = Objective.max_interaction_path p a in
  let achieved = ref false in
  for c = 0 to Problem.num_clients p - 1 do
    let worst = Interaction.client_worst p a c in
    Alcotest.(check bool) "path involves c" true
      (worst.Interaction.from_client = c || worst.Interaction.to_client = c);
    Alcotest.(check bool) "bounded by D" true (worst.Interaction.length <= d +. 1e-9);
    if worst.Interaction.length >= d -. 1e-9 then achieved := true
  done;
  Alcotest.(check bool) "some client realises D" true !achieved

let test_client_worst_at_least_round_trip () =
  let p = instance 4 ~n:20 ~k:3 in
  let a = assignment p in
  for c = 0 to Problem.num_clients p - 1 do
    let worst = Interaction.client_worst p a c in
    let s = Assignment.server_of a c in
    Alcotest.(check bool) "at least the round trip" true
      (worst.Interaction.length >= (2. *. Problem.d_cs p c s) -. 1e-9)
  done

let test_server_contribution () =
  let p = instance 5 ~n:40 ~k:5 in
  let a = assignment p in
  let contributions = Interaction.server_contribution p a in
  (match contributions with
  | (_, top) :: _ ->
      Alcotest.(check (float 1e-9)) "top contribution is D"
        (Objective.max_interaction_path p a)
        top
  | [] -> Alcotest.fail "no servers");
  let used = Array.to_list (Assignment.used_servers p a) in
  Alcotest.(check int) "one entry per used server" (List.length used)
    (List.length contributions)

let test_breakdown_sums_to_objective () =
  let p = instance 6 ~n:30 ~k:4 in
  let a = assignment p in
  let client_legs, server_leg = Interaction.breakdown p a in
  Alcotest.(check (float 1e-9)) "sums to D"
    (Objective.max_interaction_path p a)
    (client_legs +. server_leg)

let test_nearest_server_has_larger_server_share () =
  (* The paper's critique, measured through the breakdown: NSA's worst
     path is dominated by the inter-server leg more than Greedy's. *)
  let shares algorithm =
    let total_share = ref 0. in
    for seed = 0 to 4 do
      let p = instance seed ~n:60 ~k:8 in
      let a = Dia_core.Algorithm.run algorithm p in
      let client_legs, server_leg = Interaction.breakdown p a in
      total_share := !total_share +. (server_leg /. (client_legs +. server_leg))
    done;
    !total_share /. 5.
  in
  let nsa = shares Dia_core.Algorithm.Nearest_server in
  let greedy = shares Dia_core.Algorithm.Greedy in
  Alcotest.(check bool)
    (Printf.sprintf "NSA server share %.2f > greedy %.2f" nsa greedy)
    true (nsa > greedy)

(* Cross-checks against exhaustive O(|C|^2) path enumeration: the
   inspectors take eccentricity shortcuts (only per-server worst clients
   are ranked), so verify them against the definition on instances small
   enough to enumerate. *)

let all_pair_lengths p a =
  let n = Problem.num_clients p in
  let paths = ref [] in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      paths := (i, j, Objective.path_length p a i j) :: !paths
    done
  done;
  !paths

let enumeration_instances () =
  List.map
    (fun (seed, n, k, capacity, algo) ->
      let m = Synthetic.internet_like ~seed n in
      let servers = Dia_placement.Placement.random ~seed ~k ~n in
      let p = Problem.all_nodes_clients ?capacity m ~servers in
      (p, Dia_core.Algorithm.run ~seed algo p))
    [
      (3, 18, 4, None, Dia_core.Algorithm.Greedy);
      (4, 25, 6, None, Dia_core.Algorithm.Random_assignment);
      (5, 20, 5, Some 5, Dia_core.Algorithm.Nearest_server);
      (6, 12, 3, None, Dia_core.Algorithm.Single_server);
    ]

let test_worst_pairs_vs_enumeration () =
  List.iter
    (fun (p, a) ->
      let count = 7 in
      (* The documented candidate set: for every unordered pair of used
         servers, the longest path between clients of those two servers
         (a client's round trip to itself included). Build it from the
         full O(|C|^2) enumeration and rank. *)
      let per_server_pair = Hashtbl.create 16 in
      List.iter
        (fun (i, j, len) ->
          let si = Assignment.server_of a i and sj = Assignment.server_of a j in
          let key = (min si sj, max si sj) in
          match Hashtbl.find_opt per_server_pair key with
          | Some best when best >= len -> ()
          | _ -> Hashtbl.replace per_server_pair key len)
        (all_pair_lengths p a);
      let expected =
        Hashtbl.fold (fun _ len acc -> len :: acc) per_server_pair []
        |> List.sort (fun x y -> Float.compare y x)
        |> List.filteri (fun i _ -> i < count)
      in
      let got = Interaction.worst_pairs ~count p a in
      Alcotest.(check int) "one path per used server pair, capped"
        (List.length expected) (List.length got);
      List.iter2
        (fun e pa ->
          Alcotest.(check (float 1e-9)) "ranked path length" e
            pa.Interaction.length;
          Alcotest.(check (float 1e-9)) "reported pair reproduces its length"
            (Objective.path_length p a pa.Interaction.from_client
               pa.Interaction.to_client)
            pa.Interaction.length)
        expected got)
    (enumeration_instances ())

let test_client_worst_vs_enumeration () =
  List.iter
    (fun (p, a) ->
      for c = 0 to Problem.num_clients p - 1 do
        let expected =
          List.fold_left
            (fun acc (i, j, len) -> if i = c || j = c then Float.max acc len else acc)
            neg_infinity (all_pair_lengths p a)
        in
        let path = Interaction.client_worst p a c in
        Alcotest.(check (float 1e-9)) "client's worst path length" expected
          path.Interaction.length;
        Alcotest.(check bool) "path involves the client" true
          (path.Interaction.from_client = c || path.Interaction.to_client = c)
      done)
    (enumeration_instances ())

let test_server_contribution_vs_enumeration () =
  List.iter
    (fun (p, a) ->
      let through s (i, j) =
        Assignment.server_of a i = s || Assignment.server_of a j = s
      in
      let expected s =
        List.fold_left
          (fun acc (i, j, len) -> if through s (i, j) then Float.max acc len else acc)
          neg_infinity (all_pair_lengths p a)
      in
      let contributions = Interaction.server_contribution p a in
      let used =
        List.sort_uniq compare
          (Array.to_list (Array.map (Assignment.server_of a)
             (Array.init (Problem.num_clients p) Fun.id)))
      in
      Alcotest.(check int) "one entry per used server" (List.length used)
        (List.length contributions);
      List.iter
        (fun (s, value) ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "server %d contribution" s)
            (expected s) value)
        contributions)
    (enumeration_instances ())

let suite =
  [
    Alcotest.test_case "path decomposition sums" `Quick test_path_decomposition_sums;
    Alcotest.test_case "worst pair equals the objective" `Quick test_worst_pair_is_objective;
    Alcotest.test_case "client worst bounded by objective" `Quick
      test_client_worst_bounded_by_objective;
    Alcotest.test_case "client worst at least the round trip" `Quick
      test_client_worst_at_least_round_trip;
    Alcotest.test_case "server contributions" `Quick test_server_contribution;
    Alcotest.test_case "breakdown sums to the objective" `Quick
      test_breakdown_sums_to_objective;
    Alcotest.test_case "NSA pays in the inter-server leg" `Quick
      test_nearest_server_has_larger_server_share;
    Alcotest.test_case "worst_pairs matches pair enumeration" `Quick
      test_worst_pairs_vs_enumeration;
    Alcotest.test_case "client_worst matches pair enumeration" `Quick
      test_client_worst_vs_enumeration;
    Alcotest.test_case "server_contribution matches pair enumeration" `Quick
      test_server_contribution_vs_enumeration;
  ]
