(* Tests for lib/coreset: the static weighted coreset and its certified
   additive bound, the dynamic bucket layer, the bit-identity contract
   of Dynamic's incremental objective/lower-bound caches (including
   across a checkpoint-style restore), and the weighted soak's
   kill/resume determinism. *)

module Matrix = Dia_latency.Matrix
module Synthetic = Dia_latency.Synthetic
module Coreset = Dia_coreset.Coreset
module Weighted = Dia_coreset.Weighted
module Dynamic = Dia_core.Dynamic
module Problem = Dia_core.Problem
module Objective = Dia_core.Objective
module Algorithm = Dia_core.Algorithm
module Lower_bound = Dia_core.Lower_bound
module Soak = Dia_runtime.Soak
module Event_log = Dia_runtime.Event_log
module Fault = Dia_sim.Fault

let matrix = Synthetic.internet_like ~seed:21 80
let servers = Dia_placement.Placement.random ~seed:21 ~k:6 ~n:80

(* A population well beyond the node count: many clients per node. *)
let population =
  let rng = Random.State.make [| 77 |] in
  Array.init 400 (fun _ -> Random.State.int rng 80)

let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* --- static coreset --- *)

let test_partition_canonical () =
  let part = Coreset.node_partition ~eps:0.25 matrix in
  Array.iteri
    (fun v rep ->
      Alcotest.(check int)
        (Printf.sprintf "rep of rep(%d) is itself" v)
        rep part.(rep);
      Alcotest.(check bool)
        (Printf.sprintf "rep(%d) is the lowest node of its cell" v)
        true (rep <= v))
    part;
  let id = Coreset.node_partition ~eps:0. matrix in
  Array.iteri
    (fun v rep -> Alcotest.(check int) "eps=0 is the identity" v rep)
    id

let test_eps_zero_is_exact () =
  let cs = Coreset.build ~eps:0. matrix ~servers ~clients:population in
  Alcotest.(check (float 0.)) "radius collapses" 0. (Coreset.radius cs);
  Alcotest.(check (float 0.)) "bound collapses" 0. (Coreset.bound cs);
  let distinct =
    Array.to_list population |> List.sort_uniq compare |> List.length
  in
  Alcotest.(check int) "one point per occupied node" distinct
    (Coreset.points cs);
  let reduced = Coreset.reduced cs in
  let a = Algorithm.run Algorithm.Greedy reduced in
  let d_red = Objective.max_interaction_path reduced a in
  let d_full =
    Objective.max_interaction_path (Coreset.full cs) (Coreset.expand cs a)
  in
  Alcotest.(check bool) "reduced D equals full D bit-for-bit" true
    (same_bits d_red d_full)

let test_accounting_consistent () =
  let cs = Coreset.build ~eps:0.2 matrix ~servers ~clients:population in
  Alcotest.(check int) "weights sum to the population"
    (Array.length population)
    (Array.fold_left ( + ) 0 (Coreset.weights cs));
  Alcotest.(check int) "clients reports the population"
    (Array.length population) (Coreset.clients cs);
  let reps = Coreset.reps cs in
  let part = Coreset.node_partition ~eps:0.2 matrix in
  Array.iteri
    (fun i node ->
      Alcotest.(check int)
        (Printf.sprintf "client %d sits in its node's cell" i)
        part.(node)
        reps.(Coreset.bucket_of cs i))
    population;
  Alcotest.(check bool) "reduction is real on this population" true
    (Coreset.points cs < Array.length population)

let test_bound_holds_across_algorithms () =
  List.iter
    (fun eps ->
      let cs = Coreset.build ~eps matrix ~servers ~clients:population in
      let reduced = Coreset.reduced cs and full = Coreset.full cs in
      let bound = Coreset.bound cs in
      List.iter
        (fun (name, algo) ->
          let a = Algorithm.run algo reduced in
          let d_red = Objective.max_interaction_path reduced a in
          let d_full =
            Objective.max_interaction_path full (Coreset.expand cs a)
          in
          Alcotest.(check bool)
            (Printf.sprintf "|delta| within bound (%s, eps=%g)" name eps)
            true
            (Float.abs (d_full -. d_red) <= bound +. 1e-9))
        [
          ("nearest", Algorithm.Nearest_server);
          ("lfb", Algorithm.Longest_first_batch);
          ("greedy", Algorithm.Greedy);
          ("single", Algorithm.Single_server);
        ])
    [ 0.05; 0.15; 0.3; 0.6 ]

(* --- dynamic bucket layer --- *)

let test_weighted_agrees_with_static () =
  let cs = Coreset.build ~seed:3 ~eps:0.2 matrix ~servers ~clients:population in
  let w = Weighted.create ~seed:3 ~eps:0.2 matrix ~servers in
  Array.iter (fun node -> Weighted.add w ~node) population;
  Alcotest.(check int) "all sessions carried" (Array.length population)
    (Weighted.sessions w);
  Alcotest.(check int) "same occupied cells as the static build"
    (Coreset.points cs) (Weighted.points w);
  Alcotest.(check int) "Dynamic sees one member per cell" (Coreset.points cs)
    (Dynamic.num_clients (Weighted.dynamic w));
  let reps = Coreset.reps cs and weights = Coreset.weights cs in
  Array.iteri
    (fun i rep ->
      Alcotest.(check int)
        (Printf.sprintf "cell %d weight matches static" i)
        weights.(i)
        (Weighted.weight w ~node:rep);
      let id = Weighted.handle w ~node:rep in
      Alcotest.(check int)
        (Printf.sprintf "cell %d representative seated at rep" i)
        rep
        (let _, node, _ =
           List.find (fun (i', _, _) -> i' = id)
             (Dynamic.members (Weighted.dynamic w))
         in
         node))
    reps;
  let part = Coreset.node_partition ~seed:3 ~eps:0.2 matrix in
  Array.iter
    (fun node ->
      Alcotest.(check int)
        (Printf.sprintf "rep_of %d matches the static partition" node)
        part.(node) (Weighted.rep_of w node))
    population;
  (* steady-state add/remove keeps the layer and session consistent *)
  Weighted.add w ~node:population.(0);
  Weighted.remove w ~node:population.(0);
  Alcotest.(check int) "steady-state churn is weight-neutral"
    (Array.length population) (Weighted.sessions w);
  Array.iter (fun node -> Weighted.remove w ~node) population;
  Alcotest.(check int) "draining empties the layer" 0 (Weighted.sessions w);
  Alcotest.(check int) "draining empties the Dynamic" 0
    (Dynamic.num_clients (Weighted.dynamic w));
  Alcotest.(check bool) "objective back to empty" true
    (Weighted.objective w = neg_infinity)

let test_weighted_rejects_capacity () =
  let capped = Dynamic.create ~capacity:5 matrix ~servers in
  match Weighted.attach ~eps:0.2 matrix ~counts:[] capped with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacitated Dynamic accepted"

(* --- incremental D(A)/LB bit-identity under random churn --- *)

let prop_incremental_caches_bit_identical =
  (* After ANY op sequence — joins, leaves, moves, rebalances, failures
     (greedy and standby-promoted), recoveries, drift — the incremental
     objective and lower bound must equal their from-scratch recomputes
     bit-for-bit, and survive a checkpoint-style restore round-trip
     bit-for-bit. This is the determinism contract the soak's
     kill/resume and the weighted layer both sit on. *)
  QCheck.Test.make ~name:"incremental D(A)/LB bit-identical to scratch"
    ~count:20
    QCheck.(triple (int_bound 1_000_000) (int_range 20 100) bool)
    (fun (seed, steps, capacitated) ->
      let rng = Random.State.make [| seed |] in
      let capacity = if capacitated then Some 40 else None in
      let t = Dynamic.create ?capacity matrix ~servers in
      let live = ref [] and failed = ref [] in
      let ok = ref true in
      let check_identity () =
        ok :=
          !ok
          && same_bits (Dynamic.objective t) (Dynamic.objective_scratch t)
          && same_bits (Dynamic.lower_bound t) (Dynamic.lower_bound_scratch t)
      in
      for _ = 1 to steps do
        (match Random.State.int rng 12 with
        | 0 | 1 | 2 | 3 | 4 -> (
            try live := Dynamic.join t ~node:(Random.State.int rng 80) :: !live
            with Failure _ -> ())
        | 5 | 6 -> (
            match !live with
            | [] -> ()
            | id :: rest ->
                Dynamic.leave t id;
                live := rest)
        | 7 -> (
            match !live with
            | [] -> ()
            | id :: _ -> (
                try Dynamic.move t id (Random.State.int rng 6)
                with Invalid_argument _ -> ()))
        | 8 -> ignore (Dynamic.rebalance ~max_moves:3 t)
        | 9 ->
            Dynamic.set_drift t
              ~server:(Random.State.int rng 6)
              ~factor:(0.5 +. Random.State.float rng 1.5)
        | 10 ->
            let s = Random.State.int rng 6 in
            if (not (List.mem s !failed)) && List.length !failed < 4 then (
              try
                (if Random.State.bool rng then
                   ignore (Dynamic.promote_standby t s)
                 else ignore (Dynamic.fail_server_report t s));
                failed := s :: !failed;
                live :=
                  List.filter
                    (fun id ->
                      match Dynamic.server_of t id with
                      | _ -> true
                      | exception Invalid_argument _ -> false)
                    !live
              with Invalid_argument _ -> ())
        | _ -> (
            match !failed with
            | [] -> ()
            | s :: rest ->
                Dynamic.recover_server t s;
                failed := rest));
        check_identity ()
      done;
      (* the incremental LB tracks the offline bound up to ulps when no
         server is down (the offline scan includes failed servers) *)
      (if !failed = [] && Dynamic.num_clients t > 0 then
         let p, _ = Dynamic.snapshot t in
         let offline = Lower_bound.compute p in
         let lb = Dynamic.lower_bound t in
         ok :=
           !ok
           && Float.abs (lb -. offline)
              <= 1e-9 *. Float.max 1. (Float.abs offline));
      (* checkpoint-style restore: same state, same cached values,
         bit-for-bit — including the drift-rebuilt matrix *)
      let drift_list =
        List.filter_map
          (fun s ->
            let f = Dynamic.drift t s in
            if f <> 1.0 then Some (s, f) else None)
          (List.init 6 Fun.id)
      in
      let r =
        Dynamic.restore ?capacity
          ~standbys:(Dynamic.standbys t) matrix ~servers
          ~members:(Dynamic.members t) ~next_id:(Dynamic.next_id t)
          ~failed:(Dynamic.failed_servers t) ~drift:drift_list
          ~stats:(Dynamic.stats t)
      in
      !ok
      && same_bits (Dynamic.objective r) (Dynamic.objective t)
      && same_bits (Dynamic.lower_bound r) (Dynamic.lower_bound t)
      && same_bits (Dynamic.objective r) (Dynamic.objective_scratch r)
      && same_bits (Dynamic.lower_bound r) (Dynamic.lower_bound_scratch r))

(* --- weighted soak determinism --- *)

let plan spec =
  match Fault.of_string spec with Ok p -> p | Error m -> failwith m

let weighted_scenario =
  {
    Soak.default_scenario with
    Soak.seed = 11;
    nodes = 40;
    servers = 4;
    capacity = None;
    horizon = 50.;
    drift_period = 10.;
    fault = plan "loss:0.1+crash:1@15~35";
    clients = 20_000;
    coreset_eps = Some 0.15;
  }

let weighted_config = { Soak.default_config with Soak.checkpoint_every = 20 }

let test_weighted_soak_kill_resume () =
  let base =
    match Soak.run weighted_scenario weighted_config with
    | Soak.Completed r -> r
    | Soak.Killed _ -> Alcotest.fail "run killed without kill_after"
  in
  Alcotest.(check bool) "ran in weighted mode" true base.Soak.weighted;
  Alcotest.(check bool) "coreset collapsed the population" true
    (base.Soak.coreset_points > 0
    && base.Soak.coreset_points < base.Soak.clients);
  Alcotest.(check bool) "csv carries the trace" true
    (String.length (Soak.csv base) > String.length "t,objective,ratio\n"
    && String.sub (Soak.csv base) 0 18 = "t,objective,ratio\n");
  List.iter
    (fun kill_after ->
      match Soak.run ~kill_after weighted_scenario weighted_config with
      | Soak.Completed _ -> Alcotest.fail "kill_after ignored"
      | Soak.Killed st -> (
          match
            Soak.run ~resume_from:st weighted_scenario weighted_config
          with
          | Soak.Killed _ -> Alcotest.fail "resumed run killed"
          | Soak.Completed resumed ->
              Alcotest.(check string)
                (Printf.sprintf "weighted report identical after kill %d"
                   kill_after)
                (Soak.render base) (Soak.render resumed);
              Alcotest.(check string)
                (Printf.sprintf "weighted log identical after kill %d"
                   kill_after)
                (Event_log.render base.Soak.log)
                (Event_log.render resumed.Soak.log)))
    [ 1; 2 ]

let test_weighted_scenario_requires_uncapacitated () =
  let bad = { weighted_scenario with Soak.capacity = Some 50 } in
  match Soak.run bad weighted_config with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "weighted + capacity accepted"

let suite =
  [
    Alcotest.test_case "partition is canonical" `Quick test_partition_canonical;
    Alcotest.test_case "eps=0 dedups exactly" `Quick test_eps_zero_is_exact;
    Alcotest.test_case "weights and buckets consistent" `Quick
      test_accounting_consistent;
    Alcotest.test_case "additive bound holds across algorithms" `Quick
      test_bound_holds_across_algorithms;
    Alcotest.test_case "weighted layer agrees with static build" `Quick
      test_weighted_agrees_with_static;
    Alcotest.test_case "weighted layer rejects capacity" `Quick
      test_weighted_rejects_capacity;
    QCheck_alcotest.to_alcotest prop_incremental_caches_bit_identical;
    Alcotest.test_case "weighted soak kill/resume is bit-identical" `Slow
      test_weighted_soak_kill_resume;
    Alcotest.test_case "weighted scenario requires no capacity" `Quick
      test_weighted_scenario_requires_uncapacitated;
  ]
