(* Tests for Dia_core.Objective, including the property that the fast
   eccentricity-based evaluator agrees with the naive O(|C|^2) one. *)

module Synthetic = Dia_latency.Synthetic
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Ecc = Dia_core.Ecc

(* Fig. 2-style hand instance: 2 servers, 3 clients, known distances.
   Node layout: s1=0, s2=1, c1=2, c2=3, c3=4. *)
let hand_instance () =
  let m = Dia_latency.Matrix.create 5 in
  let set = Dia_latency.Matrix.set m in
  set 0 1 10.;
  (* client-server distances *)
  set 2 0 3.;
  set 3 0 4.;
  set 4 0 12.;
  set 2 1 11.;
  set 3 1 13.;
  set 4 1 5.;
  (* client-client direct links, irrelevant to the objective *)
  set 2 3 6.;
  set 2 4 14.;
  set 3 4 15.;
  Problem.make ~latency:m ~servers:[| 0; 1 |] ~clients:[| 2; 3; 4 |] ()

let test_hand_computed_objective () =
  let p = hand_instance () in
  (* c1, c2 -> s1; c3 -> s2. Paths: c1-c2 = 3+0+4 = 7; c1-c3 = 3+10+5 = 18;
     c2-c3 = 4+10+5 = 19; self paths 6, 8, 10. D = 19. *)
  let a = Assignment.of_array p [| 0; 0; 1 |] in
  Alcotest.(check (float 1e-9)) "D" 19. (Objective.max_interaction_path p a);
  Alcotest.(check (float 1e-9)) "same by naive" 19.
    (Objective.naive_max_interaction_path p a)

let test_single_server_objective_is_double_ecc () =
  let p = hand_instance () in
  let a = Assignment.of_array p [| 0; 0; 0 |] in
  (* All on s1: D = 2 * max(3,4,12) = 24. *)
  Alcotest.(check (float 1e-9)) "D" 24. (Objective.max_interaction_path p a)

let test_path_length_and_self_path () =
  let p = hand_instance () in
  let a = Assignment.of_array p [| 0; 0; 1 |] in
  Alcotest.(check (float 1e-9)) "cross path" 18. (Objective.path_length p a 0 2);
  Alcotest.(check (float 1e-9)) "self path is round trip" 6.
    (Objective.path_length p a 0 0)

let test_eccentricities () =
  let p = hand_instance () in
  let a = Assignment.of_array p [| 0; 0; 1 |] in
  let ecc = Objective.eccentricities p a in
  Alcotest.(check (float 1e-9)) "ecc s1" 4. ecc.(0);
  Alcotest.(check (float 1e-9)) "ecc s2" 5. ecc.(1)

let test_unused_server_ignored () =
  let p = hand_instance () in
  let a = Assignment.of_array p [| 0; 0; 0 |] in
  let ecc = Objective.eccentricities p a in
  Alcotest.(check bool) "unused server has -inf ecc" true (ecc.(1) = neg_infinity)

(* Pins the empty-configuration normalisation: [Ecc.objective] over an
   all-unused eccentricity array is [0.] (the identity of the max-plus
   objective), NOT [neg_infinity] — while [Dynamic.objective] keeps its
   pinned [neg_infinity]-on-empty protocol (see test_dynamic). *)
let test_ecc_objective_empty_is_zero () =
  let p = hand_instance () in
  let empty = Array.make (Problem.num_servers p) neg_infinity in
  Alcotest.(check (float 0.)) "empty D = 0" 0. (Ecc.objective p empty);
  (* One used server: back to the round-trip term immediately. *)
  let one = Array.copy empty in
  one.(0) <- 4.;
  Alcotest.(check (float 1e-9)) "one server" 8. (Ecc.objective p one)

let test_longest_pair_witness () =
  let p = hand_instance () in
  let a = Assignment.of_array p [| 0; 0; 1 |] in
  let ci, cj, len = Objective.longest_pair p a in
  Alcotest.(check (float 1e-9)) "witness length" 19. len;
  Alcotest.(check (float 1e-9)) "witness pair realises D" 19.
    (Objective.path_length p a ci cj)

let test_average_interaction_path () =
  let p = hand_instance () in
  let a = Assignment.of_array p [| 0; 0; 1 |] in
  (* Ordered pairs incl. self: mean over 9 combinations. *)
  let naive =
    let total = ref 0. in
    for i = 0 to 2 do
      for j = 0 to 2 do
        total := !total +. Objective.path_length p a i j
      done
    done;
    !total /. 9.
  in
  Alcotest.(check (float 1e-9)) "average path" naive
    (Objective.average_interaction_path p a)

(* Property: fast and naive evaluators agree on random instances and
   random assignments. *)
let prop_fast_equals_naive =
  QCheck.Test.make ~name:"fast objective equals naive objective" ~count:200
    QCheck.(triple (int_bound 1_000_000) (int_range 1 6) (int_range 1 25))
    (fun (seed, k, extra_clients) ->
      let n = k + extra_clients in
      let m = Synthetic.internet_like ~seed n in
      let servers = Array.init k Fun.id in
      let p = Problem.all_nodes_clients m ~servers in
      let a = Assignment.random p ~seed:(seed + 1) in
      let fast = Objective.max_interaction_path p a in
      let naive = Objective.naive_max_interaction_path p a in
      Float.abs (fast -. naive) <= 1e-9 *. Float.max 1. (Float.abs naive))

let prop_average_at_most_max =
  QCheck.Test.make ~name:"average path <= max path" ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_range 2 20))
    (fun (seed, n) ->
      let m = Synthetic.internet_like ~seed n in
      let p = Problem.all_nodes_clients m ~servers:[| 0; n - 1 |] in
      let a = Assignment.random p ~seed in
      Objective.average_interaction_path p a
      <= Objective.max_interaction_path p a +. 1e-9)

let suite =
  [
    Alcotest.test_case "hand-computed objective" `Quick test_hand_computed_objective;
    Alcotest.test_case "single-server objective" `Quick test_single_server_objective_is_double_ecc;
    Alcotest.test_case "path lengths including self" `Quick test_path_length_and_self_path;
    Alcotest.test_case "eccentricities" `Quick test_eccentricities;
    Alcotest.test_case "unused servers ignored" `Quick test_unused_server_ignored;
    Alcotest.test_case "empty configuration normalises to 0" `Quick
      test_ecc_objective_empty_is_zero;
    Alcotest.test_case "longest pair witness" `Quick test_longest_pair_witness;
    Alcotest.test_case "average interaction path" `Quick test_average_interaction_path;
    QCheck_alcotest.to_alcotest prop_fast_equals_naive;
    QCheck_alcotest.to_alcotest prop_average_at_most_max;
  ]
