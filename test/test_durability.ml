(* Tests for the durable-recovery layer: the write-ahead journal,
   checkpoint generations, the storage fault injector, the hardened v3
   checkpoint decoder, and the end-to-end recovery verification harness.
   The centrepiece is the boundary-free determinism property: a run
   killed at ANY event index — not just a checkpoint boundary — and
   recovered (newest verifying generation + journal replay) must be
   bit-identical to the uninterrupted run, even while the scenario's
   disk-fault plan corrupts the very files recovery depends on. *)

module Crc = Dia_runtime.Crc
module Disk = Dia_runtime.Disk
module Journal = Dia_runtime.Journal
module Generation = Dia_runtime.Generation
module Checkpoint = Dia_runtime.Checkpoint
module Event_log = Dia_runtime.Event_log
module Recovery = Dia_runtime.Recovery
module Soak = Dia_runtime.Soak
module Fault = Dia_sim.Fault

let plan spec =
  match Fault.of_string spec with Ok p -> p | Error m -> failwith m

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dia_durability_%d_%d" (Unix.getpid ()) !n)
    in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    dir

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* The same small chaos scenario the runtime tests soak: 40 nodes, 4
   servers, one crash mid-run, checkpoints every 20 events. *)
let small_scenario =
  {
    Soak.default_scenario with
    Soak.seed = 9;
    nodes = 40;
    servers = 4;
    horizon = 60.;
    drift_period = 10.;
    fault = plan "loss:0.1+crash:1@20~45";
  }

let small_config = { Soak.default_config with Soak.checkpoint_every = 20 }

let killed scenario config =
  match Soak.run ~kill_after:1 scenario config with
  | Soak.Completed _ -> Alcotest.fail "kill_after ignored"
  | Soak.Killed st -> st

(* --- Crc --- *)

let test_crc_known_values () =
  (* The CRC-32 check value from the specification. *)
  Alcotest.(check string) "empty" "00000000" (Crc.hex "");
  Alcotest.(check string) "check value" "cbf43926" (Crc.hex "123456789");
  Alcotest.(check bool) "flip detected" true (Crc.digest "a" <> Crc.digest "b")

(* --- Disk: the storage fault injector --- *)

let test_disk_injector_targets_named_ops () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "f" in
  let data = String.init 64 (fun i -> Char.chr (65 + (i mod 26))) in
  let d = Disk.create (plan "torn:2@10+flip:3@4") in
  Alcotest.(check bool) "plan carries disk rules" true (Disk.active d);
  (* op 1: clean atomic write *)
  Disk.write_file d ~path data;
  Alcotest.(check string) "op 1 untouched" data (read_file path);
  (* op 2: torn at byte 10 *)
  Disk.write_file d ~path data;
  Alcotest.(check string) "op 2 torn" (String.sub data 0 10) (read_file path);
  (* op 3: bit flip at byte 4 *)
  Disk.write_file d ~path data;
  let got = read_file path in
  Alcotest.(check int) "op 3 full length" (String.length data)
    (String.length got);
  Alcotest.(check bool) "op 3 flipped exactly byte 4" true
    (got <> data
    && String.sub got 0 4 = String.sub data 0 4
    && String.sub got 5 (String.length data - 5)
       = String.sub data 5 (String.length data - 5));
  Alcotest.(check int) "both faults fired" 2 (Disk.faults_fired d)

let test_disk_injector_rename_crash_and_fsync_loss () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "f" in
  let d = Disk.create (plan "rename:1+fsync:2@3") in
  (* op 1: crash between tmp write and rename — only the tmp survives *)
  Disk.write_file d ~path "first";
  Alcotest.(check bool) "target absent after rename crash" false
    (Sys.file_exists path);
  Alcotest.(check bool) "tmp left behind" true (Sys.file_exists (path ^ ".tmp"));
  (* op 2: rename happens but the fsync'd length is lost *)
  Disk.write_file d ~path "second";
  Alcotest.(check string) "fsync loss keeps only the prefix" "sec"
    (read_file path)

(* --- Journal --- *)

let test_journal_roundtrip () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "journal" in
  let w = Journal.create ~path ~digest:"cafe" ~base:7 () in
  Journal.append w ~cursor:7 "t=1 join session=1\n";
  Journal.append w ~cursor:8 "";
  Journal.append w ~cursor:9 "binary \x00 payload\nwith newlines\n";
  Alcotest.(check int) "appended counts buffered records" 3 (Journal.appended w);
  Journal.close w;
  Journal.close w (* idempotent *);
  match Journal.read path with
  | Error m -> Alcotest.fail m
  | Ok j ->
      Alcotest.(check string) "digest" "cafe" j.Journal.digest;
      Alcotest.(check int) "base" 7 j.Journal.base;
      Alcotest.(check bool) "clean end" true (j.Journal.torn = None);
      Alcotest.(check bool) "records survive byte-exactly" true
        (List.map (fun r -> (r.Journal.cursor, r.Journal.payload)) j.Journal.records
        = [
            (7, "t=1 join session=1\n");
            (8, "");
            (9, "binary \x00 payload\nwith newlines\n");
          ])

let test_journal_torn_tail_keeps_prefix () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "journal" in
  let w = Journal.create ~path ~digest:"d" ~base:0 () in
  Journal.append w ~cursor:0 "alpha\n";
  Journal.append w ~cursor:1 "beta\n";
  Journal.close w;
  let whole = read_file path in
  (* tear mid-way through the second record *)
  write_file path (String.sub whole 0 (String.length whole - 3));
  (match Journal.read path with
  | Error m -> Alcotest.fail m
  | Ok j ->
      Alcotest.(check int) "valid prefix kept" 1 (List.length j.Journal.records);
      Alcotest.(check bool) "tear reported" true (j.Journal.torn <> None));
  (* corrupt the first record's payload: nothing commits *)
  let flip i s =
    String.mapi (fun k c -> if k = i then Char.chr (Char.code c lxor 1) else c) s
  in
  write_file path (flip (String.length whole - 3) whole);
  (match Journal.read path with
  | Error m -> Alcotest.fail m
  | Ok j ->
      Alcotest.(check int) "crc catches the flip" 1 (List.length j.Journal.records);
      Alcotest.(check bool) "tear reported" true (j.Journal.torn <> None));
  (* a destroyed header is a hard error, not a torn journal *)
  write_file path "not a journal";
  (match Journal.read path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage header accepted");
  match Journal.read (Filename.concat dir "absent") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

let test_journal_jtorn_plan_wedges_device () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "journal" in
  let disk = Disk.create (plan "jtorn:2@5") in
  (* flush_every:1 — the header is flush op 1, the first record op 2 *)
  let w = Journal.create ~disk ~flush_every:1 ~path ~digest:"d" ~base:0 () in
  Journal.append w ~cursor:0 "alpha\n";
  Journal.append w ~cursor:1 "beta\n";
  Journal.close w;
  Alcotest.(check int) "the tear fired" 1 (Disk.faults_fired disk);
  match Journal.read path with
  | Error m -> Alcotest.fail m
  | Ok j ->
      Alcotest.(check int) "nothing committed past the tear" 0
        (List.length j.Journal.records);
      Alcotest.(check bool) "tear reported" true (j.Journal.torn <> None)

(* --- Generation --- *)

let test_generation_save_prunes_to_keep () =
  let st = killed small_scenario small_config in
  let dir = fresh_dir () in
  for i = 1 to 5 do
    Alcotest.(check int) "monotonic numbering" i
      (Generation.save ~dir ~keep:3 st)
  done;
  Alcotest.(check (list int)) "last keep survive" [ 3; 4; 5 ]
    (Generation.list ~dir);
  Alcotest.(check (option int)) "latest" (Some 5) (Generation.latest ~dir);
  match Generation.newest_verifying ~dir ~digest:st.Checkpoint.digest with
  | Some (5, st'), [] ->
      Alcotest.(check int) "restored cursor" st.Checkpoint.cursor
        st'.Checkpoint.cursor
  | _ -> Alcotest.fail "newest generation did not verify"

let test_generation_rolls_back_over_corruption () =
  let st = killed small_scenario small_config in
  let dir = fresh_dir () in
  ignore (Generation.save ~dir ~keep:3 st);
  ignore (Generation.save ~dir ~keep:3 st);
  (* flip one byte in the middle of the newest generation *)
  let p5 = Generation.path ~dir 2 in
  let body = read_file p5 in
  let i = String.length body / 2 in
  write_file p5
    (String.mapi
       (fun k c -> if k = i then Char.chr (Char.code c lxor 1) else c)
       body);
  (match Generation.newest_verifying ~dir ~digest:st.Checkpoint.digest with
  | Some (1, _), [ (2, reason) ] ->
      Alcotest.(check bool) "reason pinpoints the corruption" true (reason <> "")
  | _ -> Alcotest.fail "rollback to the older generation did not happen");
  (* a digest mismatch is as disqualifying as corruption *)
  match Generation.newest_verifying ~dir ~digest:"0000" with
  | None, skipped -> Alcotest.(check int) "all rejected" 2 (List.length skipped)
  | Some _, _ -> Alcotest.fail "wrong-digest generation accepted"

(* --- Checkpoint hardening --- *)

let test_checkpoint_rejects_garbage () =
  let bad = [ ""; "hello"; "dia-soak-checkpoint v99\nend\n" ] in
  List.iter
    (fun text ->
      match Checkpoint.decode text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "garbage accepted: %S" text))
    bad;
  (* junk after the end marker violates the truncation guard *)
  let text = Checkpoint.encode (killed small_scenario small_config) in
  match Checkpoint.decode (text ^ "trailing junk\n") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing junk accepted"

let test_checkpoint_errors_carry_line_positions () =
  let st = killed small_scenario small_config in
  let text = Checkpoint.encode st in
  (* corrupt a scalar value in place: same length, same section lines *)
  let lines = String.split_on_char '\n' text in
  let mangled =
    List.map
      (fun l ->
        if l = Printf.sprintf "cursor=%d" st.Checkpoint.cursor then "cursor=x"
        else l)
      lines
    |> String.concat "\n"
  in
  match Checkpoint.decode mangled with
  | Ok _ -> Alcotest.fail "mangled cursor accepted"
  | Error m ->
      (* the scalar crc catches it first and names the section *)
      Alcotest.(check bool)
        (Printf.sprintf "error names a section or line (%s)" m)
        true
        (let contains sub =
           let n = String.length m and ls = String.length sub in
           let rec go i = i <= n - ls && (String.sub m i ls = sub || go (i + 1)) in
           go 0
         in
         contains "section" || contains "line")

let prop_mutation_fuzzer_never_panics =
  (* Every single-byte flip and every proper truncation of a real v3
     checkpoint must decode to a structured Error — never raise, never
     yield a partial state. *)
  let text =
    lazy (Checkpoint.encode (killed small_scenario small_config))
  in
  QCheck.Test.make ~name:"byte flips and truncations always decode to Error"
    ~count:300
    QCheck.(pair (int_bound 1_000_000) bool)
    (fun (pos, truncate) ->
      let text = Lazy.force text in
      let n = String.length text in
      let mutated =
        if truncate then String.sub text 0 (pos mod n)
        else
          String.mapi
            (fun i c ->
              if i = pos mod n then Char.chr (Char.code c lxor 1) else c)
            text
      in
      match Checkpoint.decode mutated with
      | Ok _ -> false
      | Error m -> String.length m > 0
      | exception _ -> false)

let test_save_refuses_to_clobber_newer_version () =
  let st = killed small_scenario small_config in
  let dir = fresh_dir () in
  let path = Filename.concat dir "ckpt" in
  write_file path
    (Printf.sprintf "dia-soak-checkpoint v%d\nfrom the future\nend\n"
       (Checkpoint.version + 1));
  (match Checkpoint.save path st with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "older writer clobbered a newer checkpoint");
  Alcotest.(check bool) "newer file untouched" true
    (String.length (read_file path) > 0
    &&
    let body = read_file path in
    String.sub body 0 22
    = Printf.sprintf "dia-soak-checkpoint v%d" (Checkpoint.version + 1));
  (* same-version overwrite is still fine *)
  let path = Filename.concat dir "ckpt2" in
  Checkpoint.save path st;
  Checkpoint.save path st;
  match Checkpoint.load path with
  | Ok st' -> Alcotest.(check int) "reloaded" st.Checkpoint.cursor st'.Checkpoint.cursor
  | Error m -> Alcotest.fail m

(* --- Recovery: the end-to-end harness --- *)

(* The full chaos stack: network loss, a server crash, a torn write on
   the second generation and a bit flip on the third — so recovery has
   to roll back over corrupt generations to a verifying one. *)
let faulted_scenario =
  {
    small_scenario with
    Soak.fault = plan "loss:0.1+crash:1@20~45+torn:2@100+flip:3@40";
  }

let test_verify_recovery_with_disk_faults () =
  let dir = fresh_dir () in
  let v =
    Recovery.verify ~state_dir:dir ~kill_at_event:47 faulted_scenario
      small_config
  in
  if not v.Recovery.ok then
    Alcotest.fail (String.concat "\n" v.Recovery.lines);
  (* the rollback was recorded in the side-channel, never the canonical log *)
  let log = read_file (Recovery.recovery_log_path dir) in
  let first = List.hd (String.split_on_char '\n' log) in
  match Event_log.of_line first with
  | Ok { Event_log.kind = Event_log.Recovery { generation; skipped; replayed }; _ }
    ->
      Alcotest.(check bool) "rolled back to a real generation" true
        (generation >= 1);
      Alcotest.(check bool) "skipped at least the torn one" true (skipped >= 1);
      Alcotest.(check bool) "journal covered the tail" true (replayed >= 0)
  | Ok _ -> Alcotest.fail "recovery.log entry has the wrong kind"
  | Error m -> Alcotest.fail m

let test_verify_recovery_all_generations_corrupt () =
  (* Tear every generation the killed run manages to write: recovery
     must fall back to a fresh restart and still reproduce the
     uninterrupted run bit-for-bit. *)
  let scenario =
    {
      small_scenario with
      Soak.fault = plan "loss:0.1+crash:1@20~45+torn:1@30+torn:2@30+torn:3@30";
    }
  in
  let dir = fresh_dir () in
  let v = Recovery.verify ~state_dir:dir ~kill_at_event:47 scenario small_config in
  if not v.Recovery.ok then Alcotest.fail (String.concat "\n" v.Recovery.lines)

let test_verify_recovery_kill_at_first_event () =
  let dir = fresh_dir () in
  let v =
    Recovery.verify ~state_dir:dir ~kill_at_event:0 faulted_scenario
      small_config
  in
  if not v.Recovery.ok then Alcotest.fail (String.concat "\n" v.Recovery.lines)

let test_verify_recovery_kill_past_end () =
  let dir = fresh_dir () in
  let v =
    Recovery.verify ~state_dir:dir ~kill_at_event:100_000 faulted_scenario
      small_config
  in
  if not v.Recovery.ok then Alcotest.fail (String.concat "\n" v.Recovery.lines)

let prop_boundary_free_recovery_bit_identical =
  (* Satellite-3 acceptance: restore + journal replay is bit-identical
     for an ARBITRARY kill event index — including 0 and past-the-end —
     across plain, load-latency (--delay) and weighted/coreset soaks,
     with the disk-fault plan live. *)
  QCheck.Test.make
    ~name:"recovery bit-identical at any kill point (plain/delay/coreset)"
    ~count:9
    QCheck.(triple (int_bound 1_000) (int_bound 130) (int_range 0 2))
    (fun (seed, kill_at_event, mode) ->
      let scenario =
        match mode with
        | 0 -> { faulted_scenario with Soak.seed }
        | 1 ->
            {
              faulted_scenario with
              Soak.seed;
              delay = Some (Dia_core.Delay.Queueing { mu = 12. });
            }
        | _ ->
            {
              faulted_scenario with
              Soak.seed;
              clients = 2_000;
              coreset_eps = Some 0.2;
            }
      in
      let dir = fresh_dir () in
      let v = Recovery.verify ~state_dir:dir ~kill_at_event scenario small_config in
      v.Recovery.ok)

(* --- the disk-fault DSL --- *)

let test_disk_dsl_roundtrip () =
  let spec = "torn:2@100+flip:3@40+fsync:1@8+rename:2+jtorn:1@5" in
  Alcotest.(check string) "disk atoms round-trip" spec
    (Fault.to_string (plan spec));
  Alcotest.(check int) "all five schedule" 5
    (List.length (Fault.disk_schedule (plan spec)));
  (* splitting a mixed plan: disk rules never leak into the network view *)
  let mixed = plan "loss:0.1+crash:1@20~45+torn:2@100" in
  Alcotest.(check bool) "network view drops disk atoms" true
    (Fault.equal (Fault.network_rules mixed) (plan "loss:0.1+crash:1@20~45"));
  Alcotest.(check bool) "disk view keeps only disk atoms" true
    (Fault.equal (Fault.disk_rules mixed) (plan "torn:2@100"));
  match Fault.of_string "torn:0@5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "op 0 accepted"

let suite =
  [
    Alcotest.test_case "crc32 known values" `Quick test_crc_known_values;
    Alcotest.test_case "disk injector targets named write ops" `Quick
      test_disk_injector_targets_named_ops;
    Alcotest.test_case "disk injector rename crash and fsync loss" `Quick
      test_disk_injector_rename_crash_and_fsync_loss;
    Alcotest.test_case "journal round-trips binary payloads" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "journal torn tail keeps the valid prefix" `Quick
      test_journal_torn_tail_keeps_prefix;
    Alcotest.test_case "jtorn plan wedges the journal device" `Quick
      test_journal_jtorn_plan_wedges_device;
    Alcotest.test_case "generations prune to keep" `Quick
      test_generation_save_prunes_to_keep;
    Alcotest.test_case "recovery rolls back over corrupt generations" `Quick
      test_generation_rolls_back_over_corruption;
    Alcotest.test_case "checkpoint decoder rejects garbage" `Quick
      test_checkpoint_rejects_garbage;
    Alcotest.test_case "checkpoint errors carry line positions" `Quick
      test_checkpoint_errors_carry_line_positions;
    QCheck_alcotest.to_alcotest prop_mutation_fuzzer_never_panics;
    Alcotest.test_case "save refuses to clobber a newer version" `Quick
      test_save_refuses_to_clobber_newer_version;
    Alcotest.test_case "verify-recovery passes under disk faults" `Quick
      test_verify_recovery_with_disk_faults;
    Alcotest.test_case "fresh restart when every generation is corrupt" `Quick
      test_verify_recovery_all_generations_corrupt;
    Alcotest.test_case "kill at event 0 recovers" `Quick
      test_verify_recovery_kill_at_first_event;
    Alcotest.test_case "kill past the end still matches" `Quick
      test_verify_recovery_kill_past_end;
    QCheck_alcotest.to_alcotest prop_boundary_free_recovery_bit_identical;
    Alcotest.test_case "disk-fault DSL round-trips and splits" `Quick
      test_disk_dsl_roundtrip;
  ]
