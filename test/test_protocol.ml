(* Tests for Dia_sim.Protocol and Dia_sim.Checker: the executable
   counterpart of the paper's Section II analysis. *)

module Synthetic = Dia_latency.Synthetic
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Clock = Dia_core.Clock
module Algorithm = Dia_core.Algorithm
module Workload = Dia_sim.Workload
module Protocol = Dia_sim.Protocol
module Checker = Dia_sim.Checker

let instance seed ~n ~k =
  let m = Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  Problem.all_nodes_clients m ~servers

let run_synthesized ?jitter seed ~n ~k ~algorithm ~workload =
  let p = instance seed ~n ~k in
  let a = Algorithm.run algorithm p in
  let clock = Clock.synthesize p a in
  (p, a, clock, Protocol.run ?jitter p a clock workload)

let test_no_breaches_with_synthesized_clock () =
  let workload = Workload.rounds ~clients:12 ~rounds:3 ~period:50. in
  let _, _, _, report =
    run_synthesized 1 ~n:12 ~k:3 ~algorithm:Algorithm.Greedy ~workload
  in
  let verdict = Checker.analyze report in
  Alcotest.(check bool) "consistent" true verdict.consistent;
  Alcotest.(check bool) "fair" true verdict.fair;
  Alcotest.(check int) "no late executions" 0 verdict.late_executions;
  Alcotest.(check int) "no late visibilities" 0 verdict.late_visibilities

let test_interaction_times_all_equal_delta () =
  (* Section II-C: with synchronised client clocks every pairwise
     interaction time equals delta = D(A) exactly. *)
  let workload = Workload.of_list [ (0, 0.); (5, 10.); (9, 25.) ] in
  let _, _, clock, report =
    run_synthesized 2 ~n:10 ~k:2 ~algorithm:Algorithm.Nearest_server ~workload
  in
  let verdict = Checker.analyze report in
  Alcotest.(check bool) "uniform" true verdict.uniform_interaction;
  Alcotest.(check (float 1e-6)) "equal to delta" clock.Clock.delta
    verdict.max_interaction_time

let test_every_server_executes_every_op () =
  let workload = Workload.of_list [ (0, 0.); (1, 5.) ] in
  let p, _, _, report =
    run_synthesized 3 ~n:8 ~k:3 ~algorithm:Algorithm.Greedy ~workload
  in
  Alcotest.(check int) "executions = ops x servers"
    (2 * Problem.num_servers p)
    (List.length report.executions)

let test_every_client_sees_every_op () =
  let workload = Workload.of_list [ (0, 0.); (1, 5.); (2, 9.) ] in
  let p, _, _, report =
    run_synthesized 4 ~n:9 ~k:2 ~algorithm:Algorithm.Longest_first_batch ~workload
  in
  Alcotest.(check int) "visibilities = ops x clients"
    (3 * Problem.num_clients p)
    (List.length report.visibilities)

let test_message_count () =
  (* Per operation: 1 client->server, k-1 forwards, one update per
     client. *)
  let p = instance 5 ~n:10 ~k:3 in
  let a = Algorithm.run Algorithm.Greedy p in
  let clock = Clock.synthesize p a in
  let workload = Workload.of_list [ (0, 0.) ] in
  let report = Protocol.run p a clock workload in
  Alcotest.(check int) "messages"
    (1 + (Problem.num_servers p - 1) + Problem.num_clients p)
    report.messages

let test_smaller_delta_causes_breaches () =
  let p = instance 6 ~n:15 ~k:4 in
  let a = Algorithm.run Algorithm.Nearest_server p in
  let clock = Clock.synthesize p a in
  let tight = { clock with Clock.delta = clock.Clock.delta *. 0.5 } in
  let workload = Workload.rounds ~clients:15 ~rounds:2 ~period:100. in
  let report = Protocol.run p a tight workload in
  Alcotest.(check bool) "breaches appear" true (Checker.breach_rate report > 0.)

let test_consistency_lost_when_delta_too_small () =
  (* With delta far below D some server executes late, so simulation
     times of executions diverge. *)
  let p = instance 7 ~n:12 ~k:3 in
  let a = Algorithm.run Algorithm.Nearest_server p in
  let clock = Clock.synthesize p a in
  let tight = { clock with Clock.delta = 0.01 } in
  let workload = Workload.of_list [ (0, 0.) ] in
  let verdict = Checker.analyze (Protocol.run p a tight workload) in
  Alcotest.(check bool) "not consistent" false verdict.consistent

let test_jitter_causes_occasional_breaches () =
  let p = instance 8 ~n:12 ~k:3 in
  let a = Algorithm.run Algorithm.Greedy p in
  let clock = Clock.synthesize p a in
  let rng = Random.State.make [| 99 |] in
  let jitter ~src:_ ~dst:_ ~base =
    (* Up to 3x inflation: enough to break a clock tuned for zero
       jitter. *)
    base *. (1. +. Random.State.float rng 2.)
  in
  let workload = Workload.rounds ~clients:12 ~rounds:4 ~period:200. in
  let report = Protocol.run ~jitter p a clock workload in
  Alcotest.(check bool) "some breach" true (Checker.breach_rate report > 0.)

let test_percentile_planning_reduces_breaches () =
  (* Planning the clock on a high-percentile matrix (Section II-E) must
     yield fewer breaches than planning on the median when jitter is
     present. *)
  let m = Synthetic.internet_like ~seed:9 20 in
  let servers = Dia_placement.Placement.random ~seed:9 ~k:4 ~n:20 in
  let p = Problem.all_nodes_clients m ~servers in
  let a = Algorithm.run Algorithm.Greedy p in
  let model = Dia_latency.Jitter.make ~sigma:0.3 m in
  let p99_matrix = Dia_latency.Jitter.percentile_matrix model 99.9 in
  let p99 = Problem.all_nodes_clients p99_matrix ~servers in
  let clock_median = Clock.synthesize p a in
  let clock_p99 = Clock.synthesize p99 a in
  let jitter_rng = Random.State.make [| 5 |] in
  let gaussian () =
    let u = 1. -. Random.State.float jitter_rng 1. in
    let v = Random.State.float jitter_rng 1. in
    sqrt (-2. *. log u) *. cos (2. *. Float.pi *. v)
  in
  let jitter ~src:_ ~dst:_ ~base = base *. exp (0.3 *. gaussian ()) in
  let workload = Workload.rounds ~clients:20 ~rounds:5 ~period:500. in
  let rate_median = Checker.breach_rate (Protocol.run ~jitter p a clock_median workload) in
  let rate_p99 = Checker.breach_rate (Protocol.run ~jitter p a clock_p99 workload) in
  Alcotest.(check bool)
    (Printf.sprintf "p99 planning %.3f <= median planning %.3f" rate_p99 rate_median)
    true (rate_p99 <= rate_median)

let test_breach_rate_zero_on_synthesized_clock () =
  let workload = Workload.rounds ~clients:10 ~rounds:3 ~period:80. in
  let _, _, _, report =
    run_synthesized 13 ~n:10 ~k:3 ~algorithm:Algorithm.Greedy ~workload
  in
  Alcotest.(check (float 0.)) "no breaches on a clean clock" 0.
    (Checker.breach_rate report)

let test_breach_rate_matches_analyze () =
  (* breach_rate must be exactly the late events of [analyze] over the
     total deadline-bearing events of the report. *)
  let p = instance 14 ~n:14 ~k:4 in
  let a = Algorithm.run Algorithm.Nearest_server p in
  let clock = Clock.synthesize p a in
  let tight = { clock with Clock.delta = clock.Clock.delta *. 0.6 } in
  let workload = Workload.rounds ~clients:14 ~rounds:2 ~period:120. in
  let report = Protocol.run p a tight workload in
  let verdict = Checker.analyze report in
  let late = verdict.Checker.late_executions + verdict.Checker.late_visibilities in
  let total = List.length report.executions + List.length report.visibilities in
  Alcotest.(check bool) "the tight clock produced some late event" true (late > 0);
  Alcotest.(check (float 1e-12)) "rate = late / total"
    (float_of_int late /. float_of_int total)
    (Checker.breach_rate report)

let test_empty_workload () =
  let _, _, _, report =
    run_synthesized 10 ~n:6 ~k:2 ~algorithm:Algorithm.Greedy ~workload:[]
  in
  let verdict = Checker.analyze report in
  Alcotest.(check bool) "vacuously consistent" true verdict.consistent;
  Alcotest.(check bool) "vacuously fair" true verdict.fair;
  Alcotest.(check bool) "flagged empty" true verdict.empty;
  (* Empty runs normalise their statistics to 0., never nan, so
     downstream averaging cannot silently poison an aggregate. *)
  Alcotest.(check (float 0.)) "zero mean" 0. verdict.mean_interaction_time;
  Alcotest.(check (float 0.)) "zero max" 0. verdict.max_interaction_time;
  Alcotest.(check (float 0.)) "zero breach rate" 0. (Checker.breach_rate report)

let test_nonempty_not_flagged_empty () =
  let _, _, _, report =
    run_synthesized 12 ~n:6 ~k:2 ~algorithm:Algorithm.Greedy
      ~workload:(Workload.rounds ~clients:6 ~rounds:1 ~period:50.)
  in
  let verdict = Checker.analyze report in
  Alcotest.(check bool) "not empty" false verdict.empty;
  Alcotest.(check bool) "stats are real" true
    (Float.is_finite verdict.mean_interaction_time
    && verdict.mean_interaction_time > 0.)

let test_rejects_bad_issuer () =
  let p = instance 11 ~n:5 ~k:2 in
  let a = Algorithm.run Algorithm.Greedy p in
  let clock = Clock.synthesize p a in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Protocol.run p a clock (Workload.of_list [ (99, 0.) ]));
       false
     with Invalid_argument _ -> true)

let test_fairness_on_simultaneous_burst () =
  let workload = Workload.burst ~clients:10 ~at:3. in
  let _, _, _, report =
    run_synthesized 12 ~n:10 ~k:3 ~algorithm:Algorithm.Greedy ~workload
  in
  let verdict = Checker.analyze report in
  Alcotest.(check bool) "fair under burst" true verdict.fair;
  Alcotest.(check bool) "consistent under burst" true verdict.consistent

let prop_synthesized_clock_always_clean =
  (* Integration property: for random instances, algorithms, and
     workloads, the synthesized clock yields a consistent, fair run with
     uniform interaction times equal to delta. *)
  QCheck.Test.make ~name:"synthesized clock always runs clean" ~count:30
    QCheck.(quad (int_bound 1_000_000) (int_range 1 5) (int_range 2 12)
              (int_range 1 20))
    (fun (seed, k, extra, ops) ->
      let n = k + extra in
      let p = instance seed ~n ~k in
      let algorithm =
        List.nth Algorithm.heuristics (seed mod List.length Algorithm.heuristics)
      in
      let a = Algorithm.run algorithm p in
      let clock = Clock.synthesize p a in
      let rng = Random.State.make [| seed |] in
      let workload =
        Workload.of_list
          (List.init ops (fun _ ->
               (Random.State.int rng n, Random.State.float rng 500.)))
      in
      let verdict = Checker.analyze (Protocol.run p a clock workload) in
      verdict.Checker.consistent && verdict.Checker.fair
      && verdict.Checker.late_executions = 0
      && verdict.Checker.late_visibilities = 0
      && verdict.Checker.uniform_interaction
      && (ops = 0
         || Float.abs (verdict.Checker.max_interaction_time -. clock.Clock.delta)
            < 1e-6))

let suite =
  [
    Alcotest.test_case "no breaches with synthesized clock" `Quick
      test_no_breaches_with_synthesized_clock;
    Alcotest.test_case "interaction times all equal delta" `Quick
      test_interaction_times_all_equal_delta;
    Alcotest.test_case "every server executes every op" `Quick
      test_every_server_executes_every_op;
    Alcotest.test_case "every client sees every op" `Quick test_every_client_sees_every_op;
    Alcotest.test_case "message count per operation" `Quick test_message_count;
    Alcotest.test_case "delta below D causes breaches" `Quick
      test_smaller_delta_causes_breaches;
    Alcotest.test_case "consistency lost when delta tiny" `Quick
      test_consistency_lost_when_delta_too_small;
    Alcotest.test_case "jitter causes breaches" `Quick test_jitter_causes_occasional_breaches;
    Alcotest.test_case "percentile planning reduces breaches" `Quick
      test_percentile_planning_reduces_breaches;
    Alcotest.test_case "breach rate zero on synthesized clock" `Quick
      test_breach_rate_zero_on_synthesized_clock;
    Alcotest.test_case "breach rate matches analyze late counts" `Quick
      test_breach_rate_matches_analyze;
    Alcotest.test_case "empty workload" `Quick test_empty_workload;
    Alcotest.test_case "non-empty run not flagged empty" `Quick
      test_nonempty_not_flagged_empty;
    Alcotest.test_case "bad issuer rejected" `Quick test_rejects_bad_issuer;
    Alcotest.test_case "fairness under a simultaneous burst" `Quick
      test_fairness_on_simultaneous_burst;
    QCheck_alcotest.to_alcotest prop_synthesized_clock_always_clean;
  ]
