(* The flat-substrate contracts, as properties: every algorithm is a
   pure function of the matrix *entries* (so the boxed reference layout
   and the flat Bigarray store produce bit-identical assignments and
   objectives), the landmark index never changes a query's answer
   (metric or not), and Dynamic's incremental objective/LB caches agree
   bit-for-bit with their from-scratch recomputations across arbitrary
   event sequences and a checkpoint/restore round-trip. *)

module Matrix = Dia_latency.Matrix
module Landmark = Dia_latency.Landmark
module Synthetic = Dia_latency.Synthetic
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound
module Nearest = Dia_core.Nearest
module Dynamic = Dia_core.Dynamic
module Kcenter = Dia_placement.Kcenter
module Differential = Dia_oracle.Differential
module Pool = Dia_parallel.Pool

let random_instance ?capacity seed ~n ~k =
  let m = Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  Problem.all_nodes_clients ?capacity m ~servers

(* A matrix that genuinely satisfies the verified triangle bounds:
   points on a line with |xi - xj| distances. Exact in floats for small
   integer coordinates, so the landmark verification passes and the
   pruned query path (not the fallback) is what runs. *)
let metric_line_matrix seed n =
  let rng = Random.State.make [| seed |] in
  let xs = Array.init n (fun _ -> float_of_int (Random.State.int rng 1000)) in
  Matrix.init n (fun i j -> Float.abs (xs.(i) -. xs.(j)))

let prop_layout_roundtrip_bit_identical =
  QCheck.Test.make
    ~name:"all nine algorithms bit-identical across matrix layouts" ~count:15
    QCheck.(triple (int_bound 1_000_000) (int_range 2 5) (int_range 4 20))
    (fun (seed, k, extra) ->
      let n = k + extra in
      let capacity = if seed mod 3 = 0 then Some (((n - 1) / k) + 1) else None in
      let p = random_instance ?capacity seed ~n ~k in
      let m = Problem.latency p in
      let boxed = Matrix.Reference.of_matrix m in
      if not (Matrix.Reference.bit_equal boxed m) then false
      else begin
        let p' =
          Problem.make ?capacity ~latency:(Matrix.Reference.to_matrix boxed)
            ~servers:(Problem.servers p) ~clients:(Problem.clients p) ()
        in
        List.for_all
          (fun key ->
            let a = Differential.run_algo ~seed key p in
            let a' = Differential.run_algo ~seed key p' in
            Assignment.equal a a'
            && Objective.max_interaction_path p a
               = Objective.max_interaction_path p' a')
          Differential.algo_keys
        && Lower_bound.compute p = Lower_bound.compute p'
      end)

let prop_lower_bound_jobs_identical =
  QCheck.Test.make ~name:"lower bound bit-identical for any pool size"
    ~count:15
    QCheck.(triple (int_bound 1_000_000) (int_range 2 6) (int_range 5 40))
    (fun (seed, k, extra) ->
      let p = random_instance seed ~n:(k + extra) ~k in
      let seq = Lower_bound.compute p in
      Pool.with_pool ~jobs:3 (fun pool -> Lower_bound.compute ~pool p) = seq)

let prop_landmark_nearest_exact =
  QCheck.Test.make
    ~name:"landmark nearest = exhaustive scan (metric and non-metric)"
    ~count:40
    QCheck.(
      quad (int_bound 1_000_000) (int_range 1 8) (int_range 2 40) bool)
    (fun (seed, k, extra, metric) ->
      let n = k + extra in
      let m =
        if metric then metric_line_matrix seed n
        else Synthetic.internet_like ~seed n
      in
      let servers = Dia_placement.Placement.random ~seed ~k ~n in
      let p = Problem.all_nodes_clients m ~servers in
      let index = Landmark.build m ~candidates:servers in
      let ok = ref true in
      for c = 0 to n - 1 do
        let i, d = Landmark.nearest index ~query:c in
        let s = Problem.nearest_server p c in
        if i <> s || d <> Problem.d_cs p c s then ok := false
      done;
      (* The indexed assignment path must agree too. *)
      !ok && Assignment.equal (Nearest.assign p) (Nearest.assign ~index p))

let prop_landmark_bounds_valid =
  QCheck.Test.make ~name:"landmark lower bounds never exceed the distance"
    ~count:40
    QCheck.(triple (int_bound 1_000_000) (int_range 1 8) (int_range 2 40))
    (fun (seed, k, extra) ->
      let n = k + extra in
      let m =
        if seed mod 2 = 0 then metric_line_matrix seed n
        else Synthetic.internet_like ~seed n
      in
      let servers = Dia_placement.Placement.random ~seed ~k ~n in
      let index = Landmark.build m ~candidates:servers in
      let lb = Array.make k 0. in
      let ok = ref true in
      for q = 0 to n - 1 do
        Landmark.lower_bounds index ~query:q lb;
        for i = 0 to k - 1 do
          if lb.(i) > Matrix.get m q servers.(i) then ok := false
        done
      done;
      !ok)

let prop_kcenter_radius_index_identical =
  QCheck.Test.make ~name:"kcenter radius identical with an index" ~count:30
    QCheck.(triple (int_bound 1_000_000) (int_range 1 6) (int_range 2 30))
    (fun (seed, k, extra) ->
      let n = k + extra in
      let m =
        if seed mod 2 = 0 then metric_line_matrix seed n
        else Synthetic.internet_like ~seed n
      in
      let centers = Kcenter.greedy m ~k in
      let index = Landmark.build m ~candidates:centers in
      Kcenter.radius m centers = Kcenter.radius ~index m centers)

let test_index_mismatch_rejected () =
  let p = random_instance 7 ~n:12 ~k:3 in
  let other = Synthetic.internet_like ~seed:8 12 in
  let index = Landmark.build other ~candidates:(Problem.servers p) in
  Alcotest.check_raises "different matrix"
    (Invalid_argument "Nearest.assign: index built over a different matrix")
    (fun () -> ignore (Nearest.assign ~index p));
  let wrong =
    Landmark.build (Problem.latency p) ~candidates:[| 0; 1 |]
  in
  Alcotest.check_raises "different candidates"
    (Invalid_argument "Nearest.assign: index candidates do not match the servers")
    (fun () -> ignore (Nearest.assign ~index:wrong p))

(* Random event storm over Dynamic; after every burst the incremental
   caches must agree bit-for-bit with the from-scratch recomputation,
   and a restore from the exported state (over a layout-round-tripped
   base matrix) must reproduce objective and LB exactly. *)
let prop_dynamic_incremental_bit_identical =
  QCheck.Test.make ~name:"dynamic caches and restore bit-identical" ~count:20
    QCheck.(triple (int_bound 1_000_000) (int_range 2 5) (int_range 8 24))
    (fun (seed, k, n) ->
      let m = Synthetic.internet_like ~seed n in
      let servers = Dia_placement.Placement.random ~seed ~k ~n in
      let t = Dynamic.create m ~servers in
      let rng = Random.State.make [| seed; 42 |] in
      let live = ref [] in
      let ok = ref true in
      for step = 0 to 59 do
        (match Random.State.int rng 10 with
        | 0 | 1 | 2 | 3 ->
            let id = Dynamic.join t ~node:(Random.State.int rng n) in
            live := id :: !live
        | 4 | 5 -> (
            match !live with
            | [] -> ()
            | id :: rest ->
                Dynamic.leave t id;
                live := rest)
        | 6 | 7 -> (
            match !live with
            | [] -> ()
            | id :: _ -> Dynamic.move t id (Random.State.int rng k))
        | 8 ->
            Dynamic.set_drift t
              ~server:(Random.State.int rng k)
              ~factor:(0.5 +. Random.State.float rng 1.5)
        | _ ->
            if List.length (Dynamic.active_servers t) > 1 then begin
              let s = Random.State.int rng k in
              if not (List.mem s (Dynamic.failed_servers t)) then begin
                ignore (Dynamic.fail_server t s);
                Dynamic.recover_server t s
              end
            end);
        if step mod 10 = 9 then begin
          if Dynamic.objective t <> Dynamic.objective_scratch t then ok := false;
          if Dynamic.lower_bound t <> Dynamic.lower_bound_scratch t then
            ok := false
        end
      done;
      (* Restore round-trip over the round-tripped base matrix. *)
      let rt = Matrix.Reference.to_matrix (Matrix.Reference.of_matrix m) in
      let drift =
        List.filter_map
          (fun s ->
            let f = Dynamic.drift t s in
            if f <> 1.0 then Some (s, f) else None)
          (List.init k Fun.id)
      in
      let t' =
        Dynamic.restore rt ~servers
          ~members:(Dynamic.members t)
          ~next_id:(Dynamic.next_id t)
          ~failed:(Dynamic.failed_servers t)
          ~drift
          ~stats:(Dynamic.stats t)
      in
      !ok
      && Dynamic.objective t = Dynamic.objective t'
      && Dynamic.lower_bound t = Dynamic.lower_bound t')

let suite =
  [
    QCheck_alcotest.to_alcotest prop_layout_roundtrip_bit_identical;
    QCheck_alcotest.to_alcotest prop_lower_bound_jobs_identical;
    QCheck_alcotest.to_alcotest prop_landmark_nearest_exact;
    QCheck_alcotest.to_alcotest prop_landmark_bounds_valid;
    QCheck_alcotest.to_alcotest prop_kcenter_radius_index_identical;
    Alcotest.test_case "mismatched index rejected" `Quick
      test_index_mismatch_rejected;
    QCheck_alcotest.to_alcotest prop_dynamic_incremental_bit_identical;
  ]
