(* Tests for the standby-replica layer: the reservation discipline on
   live sessions, O(1) failover promotion and its promise, graceful
   stranding under saturation, checkpoint format v3, the v1 -> v3
   upgrade path, and the competitive-ratio harness. *)

module Dynamic = Dia_core.Dynamic
module Soak = Dia_runtime.Soak
module Checkpoint = Dia_runtime.Checkpoint
module Event_log = Dia_runtime.Event_log
module Competitive = Dia_runtime.Competitive
module Fault = Dia_sim.Fault

let plan spec =
  match Fault.of_string spec with Ok p -> p | Error m -> failwith m

let session ?capacity ~seed ~n ~k ~clients () =
  let matrix = Dia_latency.Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  let t = Dynamic.create ?capacity matrix ~servers in
  for i = 0 to clients - 1 do
    ignore (Dynamic.join t ~node:(i mod n))
  done;
  t

(* Every armed standby must point at a live server that is not the
   client's primary; with capacity, loads must stay within bound. *)
let check_standby_invariants ?capacity t =
  let failed = Dynamic.failed_servers t in
  List.iter
    (fun (id, _node, server) ->
      Alcotest.(check bool) "primary is live" false (List.mem server failed);
      (match capacity with
      | Some c ->
          Alcotest.(check bool) "load within capacity" true
            (Dynamic.load t server <= c)
      | None -> ());
      match Dynamic.standby_of t id with
      | None -> ()
      | Some sb ->
          Alcotest.(check bool) "standby differs from primary" true (sb <> server);
          Alcotest.(check bool) "standby is live" false (List.mem sb failed))
    (Dynamic.members t)

let busiest t ~k =
  let v = ref 0 in
  for s = 1 to k - 1 do
    if Dynamic.load t s > Dynamic.load t !v then v := s
  done;
  !v

(* --- Dynamic: standby maintenance on a live session --- *)

let test_standbys_maintained_by_churn () =
  let t = session ~capacity:10 ~seed:2 ~n:40 ~k:5 ~clients:36 () in
  check_standby_invariants ~capacity:10 t;
  (* joins arm a standby whenever one is feasible *)
  List.iter
    (fun (id, _, _) ->
      Alcotest.(check bool) "join armed a standby" true
        (Dynamic.standby_of t id <> None))
    (Dynamic.members t);
  (* leaves release reservations; moves re-arm against the new primary *)
  Dynamic.leave t 0;
  Dynamic.leave t 1;
  let id = 2 in
  let target =
    match
      List.find_opt
        (fun s -> s <> Dynamic.server_of t id && Dynamic.load t s < 10)
        (Dynamic.active_servers t)
    with
    | Some s -> s
    | None -> Alcotest.fail "no server with headroom to move to"
  in
  Dynamic.move t id target;
  Alcotest.(check int) "moved" target (Dynamic.server_of t id);
  check_standby_invariants ~capacity:10 t;
  ignore (Dynamic.rebalance ~max_moves:8 t);
  check_standby_invariants ~capacity:10 t

let test_refresh_is_canonical () =
  let t = session ~seed:3 ~n:30 ~k:4 ~clients:25 () in
  ignore (Dynamic.refresh_standbys t);
  let first = Dynamic.standbys t in
  Alcotest.(check int) "second refresh changes nothing" 0
    (Dynamic.refresh_standbys t);
  Alcotest.(check bool) "standby map is a fixpoint" true
    (Dynamic.standbys t = first)

(* --- Dynamic: promotion --- *)

let test_promote_delivers_promise () =
  let k = 5 in
  let t = session ~seed:4 ~n:40 ~k ~clients:40 () in
  ignore (Dynamic.refresh_standbys t);
  let victim = busiest t ~k in
  let promised = Dynamic.standby_objective t victim in
  let before = Dynamic.objective t in
  let r = Dynamic.promote_standby t victim in
  Alcotest.(check (float 0.)) "promise recorded exactly" promised
    r.Dynamic.promised;
  Alcotest.(check (float 0.)) "before captured" before r.Dynamic.objective_before;
  (* uncapacitated + freshly armed: every orphan lands on its standby *)
  Alcotest.(check int) "no fallback" 0 r.Dynamic.fallback;
  Alcotest.(check (list (pair int int))) "no stranding" [] r.Dynamic.stranded;
  Alcotest.(check (float 0.)) "objective equals the promise" promised
    r.Dynamic.objective_after;
  Alcotest.(check (float 0.)) "session agrees" (Dynamic.objective t)
    r.Dynamic.objective_after;
  check_standby_invariants t;
  (* the failed server is empty and out of the rotation *)
  Alcotest.(check int) "victim drained" 0 (Dynamic.load t victim);
  Alcotest.(check bool) "victim out of rotation" false
    (List.mem victim (Dynamic.active_servers t))

let test_promote_strands_iff_no_room () =
  (* k = 3 servers of capacity 10, 30 clients: the system is saturated,
     so failing a server must strand exactly its population. Then the
     same shape with capacity 20: nobody is stranded. *)
  let saturated = session ~capacity:10 ~seed:5 ~n:30 ~k:3 ~clients:30 () in
  let victim = busiest saturated ~k:3 in
  let orphans = Dynamic.load saturated victim in
  let r = Dynamic.promote_standby saturated victim in
  Alcotest.(check int) "every orphan stranded" orphans
    (List.length r.Dynamic.stranded);
  Alcotest.(check int) "none promoted" 0 r.Dynamic.promoted;
  let roomy = session ~capacity:20 ~seed:5 ~n:30 ~k:3 ~clients:30 () in
  let victim = busiest roomy ~k:3 in
  let r = Dynamic.promote_standby roomy victim in
  Alcotest.(check (list (pair int int))) "none stranded with headroom" []
    r.Dynamic.stranded;
  check_standby_invariants ~capacity:20 roomy

let prop_promotion_preserves_validity =
  (* Random sessions, capacitated and not: promotion must account for
     every orphan (promoted + fallback + stranded), never leave a client
     on the dead server or over capacity, and strand exactly the
     overflow that no live server had room for. *)
  QCheck.Test.make ~name:"promotion preserves validity and capacity" ~count:60
    QCheck.(triple (int_bound 10_000) (int_range 2 6) (int_range 0 50))
    (fun (seed, k, clients) ->
      let capacity =
        if seed mod 3 = 0 then None
        else Some (max 2 ((clients / max 1 (k - 1)) + (seed mod 4)))
      in
      (* The floored capacity can leave fewer than [clients] seats in
         total (e.g. clients=11, k=5 -> 2 x 5 = 10); joining past that
         point is a documented failure, not a promotion bug, so cap the
         population at the seat count. Fully saturated sessions survive
         the clamp and keep the stranding path exercised. *)
      let clients =
        match capacity with None -> clients | Some c -> min clients (c * k)
      in
      let t = session ?capacity ~seed ~n:20 ~k ~clients () in
      ignore (Dynamic.refresh_standbys t);
      let victim = busiest t ~k in
      let orphans = Dynamic.load t victim in
      let free =
        List.fold_left
          (fun acc s ->
            match capacity with
            | None -> max_int
            | Some _ when acc = max_int -> acc
            | Some c -> acc + (c - Dynamic.load t s))
          0
          (List.filter (fun s -> s <> victim) (Dynamic.active_servers t))
      in
      let r = Dynamic.promote_standby t victim in
      let stranded = List.length r.Dynamic.stranded in
      let expected_stranded =
        if free = max_int then 0 else max 0 (orphans - free)
      in
      r.Dynamic.promoted + r.Dynamic.fallback + stranded = orphans
      && stranded = expected_stranded
      && List.for_all
           (fun (_, _, server) ->
             server <> victim
             &&
             match capacity with
             | None -> true
             | Some c -> Dynamic.load t server <= c)
           (Dynamic.members t)
      && List.for_all
           (fun (id, _, server) ->
             match Dynamic.standby_of t id with
             | None -> true
             | Some sb -> sb <> server && sb <> victim)
           (Dynamic.members t))

let prop_promotion_on_refreshed_session_is_exact =
  (* Uncapacitated with freshly armed standbys: the promise is exact —
     promotion realises standby_objective to the bit, with no fallback
     and no stranding. *)
  QCheck.Test.make ~name:"promotion realises the promised objective exactly"
    ~count:60
    QCheck.(pair (int_bound 10_000) (int_range 2 6))
    (fun (seed, k) ->
      let t = session ~seed ~n:25 ~k ~clients:(5 * k) () in
      ignore (Dynamic.refresh_standbys t);
      let victim = busiest t ~k in
      let promised = Dynamic.standby_objective t victim in
      let r = Dynamic.promote_standby t victim in
      r.Dynamic.promised = promised
      && r.Dynamic.objective_after = promised
      && r.Dynamic.fallback = 0
      && r.Dynamic.stranded = [])

(* --- Soak: promotion repairs crashes without protocol epochs --- *)

let small_scenario =
  {
    Soak.default_scenario with
    Soak.seed = 9;
    nodes = 40;
    servers = 4;
    horizon = 60.;
    drift_period = 10.;
    fault = plan "loss:0.1+crash:1@20~45";
  }

let small_config = { Soak.default_config with Soak.checkpoint_every = 20 }

let complete scenario config =
  match Soak.run scenario config with
  | Soak.Completed r -> r
  | Soak.Killed _ -> Alcotest.fail "run killed without kill_after"

let test_soak_promotes_instead_of_resolving () =
  let r = complete small_scenario small_config in
  Alcotest.(check bool) "crash happened" true (r.Soak.crashes >= 1);
  Alcotest.(check int) "every crash repaired by promotion" r.Soak.crashes
    r.Soak.promotions;
  Alcotest.(check int) "no protocol epoch needed" 0 r.Soak.protocol_epochs;
  Alcotest.(check bool) "standbys refreshed at checkpoints" true
    (r.Soak.standby_refreshes >= 1);
  (* the log carries the promotion, with its orphan accounting *)
  let promote_logged =
    List.exists
      (fun e ->
        match e.Event_log.kind with
        | Event_log.Promote { promoted; fallback; stranded; _ } ->
            promoted + fallback >= 0 && stranded >= 0
        | _ -> false)
      r.Soak.log
  in
  Alcotest.(check bool) "Promote entry in the log" true promote_logged

let test_soak_no_standby_falls_back_to_resolve () =
  let config = { small_config with Soak.standby = false } in
  let r = complete small_scenario config in
  Alcotest.(check bool) "crash happened" true (r.Soak.crashes >= 1);
  Alcotest.(check int) "no promotions without standbys" 0 r.Soak.promotions;
  Alcotest.(check bool) "digest differs from the standby config" true
    (Soak.digest small_scenario config
    <> Soak.digest small_scenario small_config)

(* --- Checkpoint v3 and the v1 upgrade --- *)

let killed scenario config =
  match Soak.run ~kill_after:1 scenario config with
  | Soak.Completed _ -> Alcotest.fail "kill_after ignored"
  | Soak.Killed st -> st

let test_checkpoint_v3_roundtrip_with_standbys () =
  let st = killed small_scenario small_config in
  Alcotest.(check int) "current version" 3 st.Checkpoint.version;
  Alcotest.(check bool) "standbys captured" true (st.Checkpoint.standbys <> []);
  let text = Checkpoint.encode st in
  Alcotest.(check bool) "v3 header" true
    (String.length text >= 22 && String.sub text 0 22 = "dia-soak-checkpoint v3");
  match Checkpoint.decode text with
  | Error m -> Alcotest.fail m
  | Ok st' ->
      Alcotest.(check string) "decode . encode is the identity" text
        (Checkpoint.encode st');
      Alcotest.(check bool) "standby map survives" true
        (st'.Checkpoint.standbys = st.Checkpoint.standbys)

(* Rewrite a current checkpoint as the v1 format an old binary would
   have written: the v1 header, no standby=, baseline= or crc= lines. *)
let downgrade_to_v1 text =
  let has_prefix p line =
    String.length line >= String.length p && String.sub line 0 (String.length p) = p
  in
  String.split_on_char '\n' text
  |> List.filter (fun line ->
         not
           (has_prefix "standby=" line || has_prefix "baseline=" line
           || has_prefix "crc=" line))
  |> List.map (fun line ->
         if line = Printf.sprintf "dia-soak-checkpoint v%d" Checkpoint.version
         then "dia-soak-checkpoint v1"
         else line)
  |> String.concat "\n"

let test_v1_checkpoint_upgrade_resumes_identically () =
  let base = complete small_scenario small_config in
  let st = killed small_scenario small_config in
  let v1_text = downgrade_to_v1 (Checkpoint.encode st) in
  match Checkpoint.decode v1_text with
  | Error m -> Alcotest.fail ("v1 checkpoint rejected: " ^ m)
  | Ok st_v1 -> (
      Alcotest.(check int) "decoded as v1" 1 st_v1.Checkpoint.version;
      Alcotest.(check (list (pair int int))) "no standbys in v1" []
        st_v1.Checkpoint.standbys;
      match Soak.run ~resume_from:st_v1 small_scenario small_config with
      | Soak.Killed _ -> Alcotest.fail "v1 resume killed"
      | Soak.Completed resumed ->
          Alcotest.(check string) "report identical to the uninterrupted run"
            (Soak.render base) (Soak.render resumed);
          Alcotest.(check string) "event log identical too"
            (Event_log.render base.Soak.log)
            (Event_log.render resumed.Soak.log))

let prop_v1_upgrade_bit_identical_at_any_kill =
  QCheck.Test.make ~name:"v1 checkpoint upgrade is bit-identical at any kill"
    ~count:8
    QCheck.(pair (int_bound 1000) (int_range 1 3))
    (fun (seed, kill_after) ->
      let scenario = { small_scenario with Soak.seed } in
      match Soak.run scenario small_config with
      | Soak.Killed _ -> false
      | Soak.Completed base -> (
          match Soak.run ~kill_after scenario small_config with
          | Soak.Completed r ->
              (* not enough checkpoints to kill at *)
              Soak.render r = Soak.render base
          | Soak.Killed st -> (
              match Checkpoint.decode (downgrade_to_v1 (Checkpoint.encode st)) with
              | Error _ -> false
              | Ok st_v1 -> (
                  match Soak.run ~resume_from:st_v1 scenario small_config with
                  | Soak.Killed _ -> false
                  | Soak.Completed resumed ->
                      Soak.render resumed = Soak.render base
                      && Event_log.render resumed.Soak.log
                         = Event_log.render base.Soak.log))))

(* --- Competitive harness --- *)

let test_competitive_harness_smoke () =
  let scenario = { small_scenario with Soak.horizon = 40. } in
  let s = Competitive.run ~traces:3 ~bound:50. scenario small_config in
  Alcotest.(check int) "three traces" 3 (List.length s.Competitive.per_trace);
  Alcotest.(check bool) "samples collected" true (s.Competitive.samples > 0);
  Alcotest.(check bool) "ratio measured" true (Float.is_finite s.Competitive.max);
  Alcotest.(check bool) "within the generous bound" true s.Competitive.ok;
  (* deterministic: the CSV artifact reproduces byte-for-byte *)
  let s' = Competitive.run ~traces:3 ~bound:50. scenario small_config in
  Alcotest.(check string) "CSV is deterministic" (Competitive.to_csv s)
    (Competitive.to_csv s');
  let lines = String.split_on_char '\n' (String.trim (Competitive.to_csv s)) in
  Alcotest.(check int) "header plus one row per trace" 4 (List.length lines);
  Alcotest.(check string) "header names the columns"
    "trace,seed,samples,mean,max,final" (List.hd lines)

let test_competitive_rejects_bad_params () =
  (match Competitive.run ~traces:0 small_scenario small_config with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "traces = 0 accepted");
  match Competitive.run ~bound:0.5 small_scenario small_config with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound < 1 accepted"

let suite =
  [
    Alcotest.test_case "standbys maintained across churn" `Quick
      test_standbys_maintained_by_churn;
    Alcotest.test_case "refresh_standbys is a canonical fixpoint" `Quick
      test_refresh_is_canonical;
    Alcotest.test_case "promotion delivers the promised objective" `Quick
      test_promote_delivers_promise;
    Alcotest.test_case "promotion strands exactly the overflow" `Quick
      test_promote_strands_iff_no_room;
    QCheck_alcotest.to_alcotest prop_promotion_preserves_validity;
    QCheck_alcotest.to_alcotest prop_promotion_on_refreshed_session_is_exact;
    Alcotest.test_case "soak repairs crashes by promotion, no epochs" `Quick
      test_soak_promotes_instead_of_resolving;
    Alcotest.test_case "soak without standbys uses the resolve path" `Quick
      test_soak_no_standby_falls_back_to_resolve;
    Alcotest.test_case "checkpoint v3 round-trips the standby map" `Quick
      test_checkpoint_v3_roundtrip_with_standbys;
    Alcotest.test_case "v1 checkpoint upgrades and resumes bit-identically"
      `Quick test_v1_checkpoint_upgrade_resumes_identically;
    QCheck_alcotest.to_alcotest prop_v1_upgrade_bit_identical_at_any_kill;
    Alcotest.test_case "competitive harness measures and reproduces" `Quick
      test_competitive_harness_smoke;
    Alcotest.test_case "competitive harness validates parameters" `Quick
      test_competitive_rejects_bad_params;
  ]
