(* Tests for Dia_latency.Matrix. *)

module Matrix = Dia_latency.Matrix

let check = Alcotest.(check (float 1e-9))

let test_create_zero () =
  let m = Matrix.create 4 in
  Alcotest.(check int) "dim" 4 (Matrix.dim m);
  for i = 0 to 3 do
    for j = 0 to 3 do
      check "zero entry" 0. (Matrix.get m i j)
    done
  done

let test_init_symmetric () =
  let m = Matrix.init 5 (fun i j -> float_of_int ((10 * i) + j)) in
  for i = 0 to 4 do
    check "diagonal" 0. (Matrix.get m i i);
    for j = 0 to 4 do
      check "symmetry" (Matrix.get m i j) (Matrix.get m j i)
    done
  done;
  check "upper triangle value" 12. (Matrix.get m 1 2);
  check "mirrored value" 12. (Matrix.get m 2 1)

let test_set_both_sides () =
  let m = Matrix.create 3 in
  Matrix.set m 0 2 7.5;
  check "set (0,2)" 7.5 (Matrix.get m 0 2);
  check "set (2,0)" 7.5 (Matrix.get m 2 0)

let test_set_rejects_bad_values () =
  let m = Matrix.create 3 in
  Alcotest.check_raises "negative" (Invalid_argument "Matrix: latency -1 is not a finite non-negative value")
    (fun () -> Matrix.set m 0 1 (-1.));
  Alcotest.check_raises "diagonal" (Invalid_argument "Matrix.set: non-zero diagonal")
    (fun () -> Matrix.set m 1 1 3.)

let test_out_of_bounds () =
  let m = Matrix.create 2 in
  Alcotest.check_raises "get oob" (Invalid_argument "Matrix: index 2 out of bounds [0, 2)")
    (fun () -> ignore (Matrix.get m 0 2))

let test_copy_independent () =
  let m = Matrix.init 3 (fun _ _ -> 1.) in
  let m' = Matrix.copy m in
  Matrix.set m' 0 1 9.;
  check "original unchanged" 1. (Matrix.get m 0 1);
  check "copy changed" 9. (Matrix.get m' 0 1)

let test_sub () =
  let m = Matrix.init 5 (fun i j -> float_of_int (i + j)) in
  let s = Matrix.sub m [| 1; 3; 4 |] in
  Alcotest.(check int) "sub dim" 3 (Matrix.dim s);
  check "sub entry" (Matrix.get m 1 3) (Matrix.get s 0 1);
  check "sub entry 2" (Matrix.get m 3 4) (Matrix.get s 1 2)

let test_extrema_and_mean () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 2.;
  Matrix.set m 0 2 4.;
  Matrix.set m 1 2 6.;
  check "max" 6. (Matrix.max_entry m);
  check "min" 2. (Matrix.min_entry m);
  check "mean" 4. (Matrix.mean_entry m)

let test_extrema_degenerate () =
  let m = Matrix.create 1 in
  check "max of 1x1" 0. (Matrix.max_entry m);
  Alcotest.(check bool) "min of 1x1 infinite" true (Matrix.min_entry m = infinity);
  Alcotest.(check bool) "mean of 1x1 nan" true (Float.is_nan (Matrix.mean_entry m))

let test_of_rows_symmetrises () =
  let m = Matrix.of_rows [| [| 0.; 2. |]; [| 4.; 0. |] |] in
  check "averaged" 3. (Matrix.get m 0 1)

let test_of_rows_rejects_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_rows: not square")
    (fun () -> ignore (Matrix.of_rows [| [| 0. |]; [| 1.; 0. |] |]))

let test_roundtrip_rows () =
  let m = Matrix.init 4 (fun i j -> float_of_int ((i * 7) + j)) in
  let m' = Matrix.of_rows (Matrix.to_rows m) in
  Alcotest.(check bool) "roundtrip equal" true (Matrix.equal m m')

let test_iter_pairs_count () =
  let m = Matrix.create 6 in
  let count = ref 0 in
  Matrix.iter_pairs m (fun i j _ ->
      Alcotest.(check bool) "ordered" true (i < j);
      incr count);
  Alcotest.(check int) "pair count" 15 !count

(* Pins the printer contract: degenerate dimensions get a plain tag
   (never [mean=nan]), small matrices print in full, large ones print
   the one-pass min/mean/max summary. [mean_entry]'s own nan-for-dim<=1
   behaviour is API and unchanged. *)
let test_pp_shapes () =
  let render m = Format.asprintf "%a" Matrix.pp m in
  Alcotest.(check string) "0x0" "<matrix 0x0>" (render (Matrix.create 0));
  Alcotest.(check string) "1x1" "<matrix 1x1>" (render (Matrix.create 1));
  let small = render (Matrix.init 3 (fun i j -> float_of_int (i + j))) in
  Alcotest.(check bool) "small prints entries" true
    (String.length small > 0 && not (String.contains small '<'));
  let big = render (Matrix.init 13 (fun i j -> float_of_int ((i * 13) + j))) in
  Alcotest.(check bool) "large prints summary" true
    (String.length big >= 13
    && String.sub big 0 13 = "<matrix 13x13"
    && not
         (let rec has_nan i =
            i + 3 <= String.length big
            && (String.sub big i 3 = "nan" || has_nan (i + 1))
          in
          has_nan 0));
  Alcotest.(check bool) "degenerate mean_entry still nan" true
    (Float.is_nan (Matrix.mean_entry (Matrix.create 1)))

let test_equal_eps () =
  let a = Matrix.init 3 (fun _ _ -> 1. ) in
  let b = Matrix.init 3 (fun _ _ -> 1.0000001) in
  Alcotest.(check bool) "not equal tight" false (Matrix.equal a b);
  Alcotest.(check bool) "equal loose" true (Matrix.equal ~eps:1e-3 a b)

let suite =
  [
    Alcotest.test_case "create is all zero" `Quick test_create_zero;
    Alcotest.test_case "init symmetrises and zeroes diagonal" `Quick test_init_symmetric;
    Alcotest.test_case "set writes both triangles" `Quick test_set_both_sides;
    Alcotest.test_case "set rejects bad values" `Quick test_set_rejects_bad_values;
    Alcotest.test_case "index bounds checked" `Quick test_out_of_bounds;
    Alcotest.test_case "copy is deep" `Quick test_copy_independent;
    Alcotest.test_case "sub extracts principal submatrix" `Quick test_sub;
    Alcotest.test_case "extrema and mean" `Quick test_extrema_and_mean;
    Alcotest.test_case "extrema of degenerate matrices" `Quick test_extrema_degenerate;
    Alcotest.test_case "of_rows averages asymmetry" `Quick test_of_rows_symmetrises;
    Alcotest.test_case "of_rows rejects ragged input" `Quick test_of_rows_rejects_ragged;
    Alcotest.test_case "to_rows/of_rows roundtrip" `Quick test_roundtrip_rows;
    Alcotest.test_case "iter_pairs visits each unordered pair once" `Quick test_iter_pairs_count;
    Alcotest.test_case "equal honours epsilon" `Quick test_equal_eps;
    Alcotest.test_case "pp: tag, grid and nan-free summary" `Quick test_pp_shapes;
  ]
