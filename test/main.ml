let () =
  Alcotest.run "dia"
    [
      ("matrix", Test_matrix.suite);
      ("graph-paths", Test_graph_paths.suite);
      ("metric", Test_metric.suite);
      ("synthetic", Test_synthetic.suite);
      ("loader", Test_loader.suite);
      ("jitter", Test_jitter.suite);
      ("vivaldi", Test_vivaldi.suite);
      ("topology", Test_topology.suite);
      ("placement", Test_placement.suite);
      ("problem", Test_problem.suite);
      ("objective", Test_objective.suite);
      ("lower-bound", Test_lower_bound.suite);
      ("algorithms", Test_algorithms.suite);
      ("brute-force", Test_brute_force.suite);
      ("clock", Test_clock.suite);
      ("distributed-greedy", Test_distributed_greedy.suite);
      ("dynamic", Test_dynamic.suite);
      ("local-search", Test_local_search.suite);
      ("zone-based", Test_zone_based.suite);
      ("interaction", Test_interaction.suite);
      ("properties", Test_properties.suite);
      ("engine", Test_engine.suite);
      ("network", Test_network.suite);
      ("workload", Test_workload.suite);
      ("protocol", Test_protocol.suite);
      ("setcover", Test_setcover.suite);
      ("reduction", Test_reduction.suite);
      ("stats", Test_stats.suite);
      ("experiments", Test_experiments.suite);
      ("state", Test_state.suite);
      ("dgreedy-protocol", Test_dgreedy_protocol.suite);
      ("fault", Test_fault.suite);
      ("repair", Test_repair.suite);
      ("bucket", Test_bucket.suite);
    ]
