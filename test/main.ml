(* The qcheck suites draw from a PRNG seeded by the QCHECK_SEED
   environment variable (qcheck-alcotest reads it lazily, once). To make
   failures reproducible the runner resolves the seed itself — from
   DIA_QCHECK_SEED (ours), then QCHECK_SEED (qcheck's own), then fresh
   entropy — exports it, and prints it when any test fails. *)
let resolve_seed () =
  let parse name value =
    match int_of_string_opt (String.trim value) with
    | Some seed -> seed
    | None -> failwith (Printf.sprintf "%s must be an integer, got %S" name value)
  in
  match Sys.getenv_opt "DIA_QCHECK_SEED" with
  | Some value -> parse "DIA_QCHECK_SEED" value
  | None -> (
      match Sys.getenv_opt "QCHECK_SEED" with
      | Some value -> parse "QCHECK_SEED" value
      | None ->
          Random.self_init ();
          Random.int 1_000_000_000)

let () =
  let seed = resolve_seed () in
  Unix.putenv "QCHECK_SEED" (string_of_int seed);
  let tests =
    [
      ("matrix", Test_matrix.suite);
      ("graph-paths", Test_graph_paths.suite);
      ("metric", Test_metric.suite);
      ("synthetic", Test_synthetic.suite);
      ("loader", Test_loader.suite);
      ("jitter", Test_jitter.suite);
      ("vivaldi", Test_vivaldi.suite);
      ("topology", Test_topology.suite);
      ("placement", Test_placement.suite);
      ("problem", Test_problem.suite);
      ("objective", Test_objective.suite);
      ("lower-bound", Test_lower_bound.suite);
      ("algorithms", Test_algorithms.suite);
      ("brute-force", Test_brute_force.suite);
      ("clock", Test_clock.suite);
      ("distributed-greedy", Test_distributed_greedy.suite);
      ("dynamic", Test_dynamic.suite);
      ("local-search", Test_local_search.suite);
      ("zone-based", Test_zone_based.suite);
      ("interaction", Test_interaction.suite);
      ("properties", Test_properties.suite);
      ("engine", Test_engine.suite);
      ("network", Test_network.suite);
      ("workload", Test_workload.suite);
      ("protocol", Test_protocol.suite);
      ("setcover", Test_setcover.suite);
      ("reduction", Test_reduction.suite);
      ("stats", Test_stats.suite);
      ("experiments", Test_experiments.suite);
      ("state", Test_state.suite);
      ("dgreedy-protocol", Test_dgreedy_protocol.suite);
      ("fault", Test_fault.suite);
      ("repair", Test_repair.suite);
      ("bucket", Test_bucket.suite);
      ("parallel", Test_parallel.suite);
      ("runtime", Test_runtime.suite);
      ("standby", Test_standby.suite);
      ("durability", Test_durability.suite);
      ("coreset", Test_coreset.suite);
      ("substrate", Test_substrate.suite);
      ("golden", Test_golden.suite);
    ]
  in
  try Alcotest.run ~and_exit:false "dia" tests
  with exn ->
    Printf.eprintf
      "\nproperty tests ran with qcheck seed %d — rerun with DIA_QCHECK_SEED=%d to reproduce\n"
      seed seed;
    raise exn
