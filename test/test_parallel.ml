(* Tests for Dia_parallel.Pool: pool lifecycle, and the determinism
   contract — bit-identical results between jobs = 1 and jobs ∈ {2, 3, 8}
   for every parallelized entry point. *)

module Pool = Dia_parallel.Pool
module Synthetic = Dia_latency.Synthetic
module Problem = Dia_core.Problem
module Lower_bound = Dia_core.Lower_bound
module Local_search = Dia_core.Local_search
module Kcenter = Dia_placement.Kcenter
module Placement = Dia_placement.Placement
module Runner = Dia_experiments.Runner

(* Shared pools: spawning domains per qcheck case would dominate the
   suite's runtime. The last test of the suite shuts them down. *)
let pools = List.map (fun jobs -> Pool.create ~jobs ()) [ 2; 3; 8 ]

let random_instance seed ~n ~k =
  let m = Synthetic.internet_like ~seed n in
  let servers = Placement.random ~seed ~k ~n in
  (m, Problem.all_nodes_clients m ~servers)

(* -- Lifecycle ----------------------------------------------------------- *)

let test_jobs_one_is_inline () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (Pool.jobs pool);
      let r = Pool.init pool 10 (fun i -> i * i) in
      Alcotest.(check (array int)) "init" (Array.init 10 (fun i -> i * i)) r;
      Alcotest.(check int) "no worker batches" 0 (Pool.exercised pool))

let test_reuse_many_submissions () =
  Pool.with_pool ~jobs:4 (fun pool ->
      for round = 1 to 200 do
        let r = Pool.init pool 64 (fun i -> (i * round) land 1023) in
        let expected = Array.init 64 (fun i -> (i * round) land 1023) in
        if r <> expected then
          Alcotest.failf "round %d: wrong result after reuse" round
      done;
      Alcotest.(check bool) "worker path exercised" true (Pool.exercised pool > 0))

let test_shutdown_idempotent () =
  let pool = Pool.create ~jobs:3 () in
  ignore (Pool.init pool 8 Fun.id);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* and again via with_pool's finally after an explicit shutdown *)
  Pool.with_pool ~jobs:2 (fun p -> Pool.shutdown p);
  Alcotest.check_raises "submission after shutdown"
    (Invalid_argument "Pool: used after shutdown") (fun () ->
      ignore (Pool.init pool 8 Fun.id))

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (* The lowest-index failure is the one reported, as sequentially. *)
      Alcotest.check_raises "worker exception surfaces" (Boom 17) (fun () ->
          ignore
            (Pool.init pool 100 (fun i -> if i >= 17 then raise (Boom i) else i)));
      (* The pool survives a failed batch. *)
      let r = Pool.init pool 32 succ in
      Alcotest.(check (array int)) "usable after exception"
        (Array.init 32 succ) r)

let test_nested_submission_runs_inline () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (* A task running on the pool may call back into the same pool;
         the nested batch must run inline instead of deadlocking. *)
      let r =
        Pool.init pool 16 (fun i ->
            Pool.map_reduce pool ~map:Fun.id ~reduce:( + ) ~init:0
              (Array.init (i + 4) Fun.id))
      in
      let expected = Array.init 16 (fun i -> (i + 4) * (i + 3) / 2) in
      Alcotest.(check (array int)) "nested" expected r)

let test_run_seeds_order () =
  Pool.with_pool ~jobs:8 (fun pool ->
      let r = Pool.run_seeds pool ~seeds:100 (fun s -> s * 7) in
      Alcotest.(check (array int)) "seed order" (Array.init 100 (fun s -> s * 7)) r)

let test_default_jobs_env () =
  Unix.putenv "DIA_JOBS" "5";
  Alcotest.(check int) "DIA_JOBS=5" 5 (Pool.default_jobs ());
  Unix.putenv "DIA_JOBS" "not-a-number";
  Alcotest.(check int) "garbage" 1 (Pool.default_jobs ());
  Unix.putenv "DIA_JOBS" "0";
  Alcotest.(check int) "non-positive" 1 (Pool.default_jobs ());
  Unix.putenv "DIA_JOBS" ""

let test_anneal_restarts_deterministic () =
  let _, p = random_instance 5 ~n:40 ~k:5 in
  let start = Dia_core.Nearest.assign p in
  let params =
    { Local_search.default_annealing with Local_search.steps = 2_000 }
  in
  let seq = Local_search.anneal_restarts ~params ~restarts:6 p start in
  List.iter
    (fun pool ->
      let par = Local_search.anneal_restarts ~pool ~params ~restarts:6 p start in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d identical" (Pool.jobs pool))
        true (par = seq))
    pools

let test_kcenter_deterministic () =
  let m = Synthetic.internet_like ~seed:3 150 in
  let seq_a = Kcenter.two_approx ~seed:1 m ~k:12 in
  let seq_b = Kcenter.greedy m ~k:12 in
  List.iter
    (fun pool ->
      Alcotest.(check (array int)) "two_approx" seq_a
        (Kcenter.two_approx ~seed:1 ~pool m ~k:12);
      Alcotest.(check (array int)) "greedy" seq_b (Kcenter.greedy ~pool m ~k:12))
    pools

(* Chunk granularity: a small batch must not be oversplit into more
   chunks than workers — per-chunk setup overhead dominated and made
   jobs=4 slower than jobs=1 (the fig8 regression). chunk_map returns
   one value per chunk, so its length is the chunk count. *)
let test_small_batch_not_oversplit () =
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun n ->
          let parts = Pool.chunk_map pool ~n (fun ~lo ~hi -> hi - lo) in
          if Array.length parts > 4 then
            Alcotest.failf "n=%d split into %d chunks (> jobs=4)" n
              (Array.length parts);
          Alcotest.(check int)
            (Printf.sprintf "n=%d items covered" n)
            n
            (Array.fold_left ( + ) 0 parts))
        [ 2; 4; 8; 12; 24; 63 ];
      (* Large batches still oversplit for balance. *)
      let parts = Pool.chunk_map pool ~n:1024 (fun ~lo ~hi -> hi - lo) in
      Alcotest.(check int) "n=1024 oversplit 4x" 16 (Array.length parts);
      (* A raised grain keeps even big batches coarse. *)
      let parts = Pool.chunk_map ~grain:512 pool ~n:1024 (fun ~lo ~hi -> hi - lo) in
      Alcotest.(check int) "grain=512 caps at jobs" 4 (Array.length parts))

(* -- qcheck determinism properties ---------------------------------------- *)

(* Exact float equality on purpose: the contract is bit-identity. *)
let prop_map_reduce_bit_identical =
  QCheck.Test.make ~name:"map_reduce matches the sequential fold exactly"
    ~count:30
    QCheck.(pair (int_bound 1_000_000) (int_range 0 500))
    (fun (seed, n) ->
      let rng = Random.State.make [| seed |] in
      let arr = Array.init n (fun _ -> Random.State.float rng 1000. -. 500.) in
      let map x = (x *. 3.7) -. (x *. x /. 97.) in
      let reduce acc y = acc +. y in
      let seq = Array.fold_left reduce 0. (Array.map map arr) in
      List.for_all
        (fun pool ->
          Pool.map_reduce pool ~map ~reduce ~init:0. arr = seq)
        pools)

let prop_lower_bound_bit_identical =
  QCheck.Test.make ~name:"Lower_bound.compute identical for jobs in {2,3,8}"
    ~count:25
    QCheck.(triple (int_bound 1_000_000) (int_range 1 8) (int_range 1 40))
    (fun (seed, k, extra) ->
      let _, p = random_instance seed ~n:(k + extra) ~k in
      let seq = Lower_bound.compute p in
      List.for_all (fun pool -> Lower_bound.compute ~pool p = seq) pools)

let prop_average_normalized_bit_identical =
  QCheck.Test.make
    ~name:"Runner.average_normalized identical for jobs in {2,3,8}" ~count:10
    QCheck.(triple (int_bound 1_000_000) (int_range 6 30) (int_range 1 5))
    (fun (seed, n, runs) ->
      let m = Synthetic.internet_like ~seed n in
      let k = max 1 (n / 4) in
      let seq = Runner.average_normalized m ~runs ~k in
      List.for_all
        (fun pool -> Runner.average_normalized ~pool m ~runs ~k = seq)
        pools)

(* Must stay last: later cases would hit "used after shutdown". *)
let test_shutdown_shared_pools () =
  List.iter
    (fun pool ->
      Alcotest.(check bool) "worker path exercised" true (Pool.exercised pool > 0);
      Pool.shutdown pool)
    pools

let suite =
  [
    Alcotest.test_case "jobs=1 runs inline" `Quick test_jobs_one_is_inline;
    Alcotest.test_case "reuse across 200 submissions" `Quick test_reuse_many_submissions;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "exceptions propagate out of workers" `Quick
      test_exception_propagation;
    Alcotest.test_case "nested submission runs inline" `Quick
      test_nested_submission_runs_inline;
    Alcotest.test_case "run_seeds preserves seed order" `Quick test_run_seeds_order;
    Alcotest.test_case "DIA_JOBS parsing" `Quick test_default_jobs_env;
    Alcotest.test_case "anneal_restarts deterministic across pools" `Quick
      test_anneal_restarts_deterministic;
    Alcotest.test_case "K-center scans deterministic across pools" `Quick
      test_kcenter_deterministic;
    Alcotest.test_case "small batches issue at most jobs chunks" `Quick
      test_small_batch_not_oversplit;
    QCheck_alcotest.to_alcotest prop_map_reduce_bit_identical;
    QCheck_alcotest.to_alcotest prop_lower_bound_bit_identical;
    QCheck_alcotest.to_alcotest prop_average_normalized_bit_identical;
    Alcotest.test_case "shutdown shared pools" `Quick test_shutdown_shared_pools;
  ]
