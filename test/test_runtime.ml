(* Tests for Dia_runtime: the SLO-guarded, checkpointable control plane.
   The centrepiece is the determinism-under-failure property: a soak run
   killed at a random checkpoint and resumed must be bit-identical to the
   uninterrupted run. *)

module Slo = Dia_runtime.Slo
module Admission = Dia_runtime.Admission
module Trace = Dia_runtime.Trace
module Event_log = Dia_runtime.Event_log
module Checkpoint = Dia_runtime.Checkpoint
module Codec = Dia_runtime.Codec
module Soak = Dia_runtime.Soak
module Fault = Dia_sim.Fault

let plan spec =
  match Fault.of_string spec with Ok p -> p | Error m -> failwith m

(* --- Slo --- *)

let slo_config =
  { Slo.degraded_at = 1.2; critical_at = 1.5; hysteresis = 3; recover_margin = 0.9 }

let test_slo_hysteresis () =
  let t = Slo.create slo_config in
  Alcotest.(check bool) "one bad tick no-op" true (Slo.observe t 1.3 = None);
  Alcotest.(check bool) "two bad ticks no-op" true (Slo.observe t 1.3 = None);
  Alcotest.(check bool) "still healthy" true (Slo.level t = Slo.Healthy);
  Alcotest.(check bool) "third tick escalates" true
    (Slo.observe t 1.3 = Some (Slo.Healthy, Slo.Degraded));
  (* escalation may jump straight to Critical *)
  ignore (Slo.observe t 1.9);
  ignore (Slo.observe t 1.9);
  Alcotest.(check bool) "escalate to critical" true
    (Slo.observe t 1.9 = Some (Slo.Degraded, Slo.Critical));
  (* recovery steps one level at a time *)
  ignore (Slo.observe t 1.0);
  ignore (Slo.observe t 1.0);
  Alcotest.(check bool) "recover one step" true
    (Slo.observe t 1.0 = Some (Slo.Critical, Slo.Degraded));
  ignore (Slo.observe t 1.0);
  ignore (Slo.observe t 1.0);
  Alcotest.(check bool) "recover to healthy" true
    (Slo.observe t 1.0 = Some (Slo.Degraded, Slo.Healthy))

let test_slo_recover_margin () =
  let t = Slo.create slo_config in
  for _ = 1 to 3 do ignore (Slo.observe t 1.3) done;
  Alcotest.(check bool) "degraded" true (Slo.level t = Slo.Degraded);
  (* 1.1 is below degraded_at but above degraded_at * margin = 1.08:
     the damped monitor refuses to flap back *)
  for _ = 1 to 6 do
    Alcotest.(check bool) "inside margin never de-escalates" true
      (Slo.observe t 1.1 = None)
  done;
  Alcotest.(check bool) "still degraded" true (Slo.level t = Slo.Degraded);
  ignore (Slo.observe t 1.0);
  ignore (Slo.observe t 1.0);
  Alcotest.(check bool) "below margin de-escalates" true
    (Slo.observe t 1.0 = Some (Slo.Degraded, Slo.Healthy))

let test_slo_ignores_non_finite () =
  let t = Slo.create slo_config in
  ignore (Slo.observe t 1.3);
  ignore (Slo.observe t 1.3);
  Alcotest.(check bool) "nan does not advance the streak" true
    (Slo.observe t Float.nan = None);
  Alcotest.(check bool) "nan does not reset the streak either" true
    (Slo.observe t 1.3 = Some (Slo.Healthy, Slo.Degraded))

let test_slo_codec_roundtrip () =
  let t = Slo.create slo_config in
  ignore (Slo.observe t 1.3);
  ignore (Slo.observe t 1.6);
  let t' = Slo.decode slo_config (Slo.encode t) in
  Alcotest.(check string) "encode . decode . encode is stable"
    (Slo.encode t) (Slo.encode t');
  Alcotest.(check bool) "level preserved" true (Slo.level t = Slo.level t');
  Alcotest.check_raises "malformed state rejected"
    (Failure "Slo.decode: malformed state \"bogus\"") (fun () ->
      ignore (Slo.decode slo_config "bogus"))

let test_slo_validate () =
  Alcotest.(check bool) "default valid" true
    (Slo.validate_config Slo.default_config = ());
  List.iter
    (fun cfg ->
      match Slo.validate_config cfg with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "invalid config accepted")
    [
      { slo_config with Slo.degraded_at = 0.9 };
      { slo_config with Slo.critical_at = 1.1 };
      { slo_config with Slo.hysteresis = 0 };
      { slo_config with Slo.recover_margin = 0. };
      { slo_config with Slo.recover_margin = 1.5 };
    ]

let test_slo_exact_threshold_edges () =
  (* Escalation bands are closed on the left: a ratio exactly at a
     threshold argues for the worse level, one just below stays put.
     Pinned here because the load-aware objective routinely parks the
     ratio exactly on a threshold (saturated M/M/1 plateaus). *)
  let t = Slo.create slo_config in
  for _ = 1 to 5 do
    Alcotest.(check bool) "just below degraded_at stays healthy" true
      (Slo.observe t (slo_config.Slo.degraded_at -. 1e-9) = None)
  done;
  Alcotest.(check bool) "still healthy" true (Slo.level t = Slo.Healthy);
  ignore (Slo.observe t slo_config.Slo.degraded_at);
  ignore (Slo.observe t slo_config.Slo.degraded_at);
  Alcotest.(check bool) "exactly degraded_at escalates" true
    (Slo.observe t slo_config.Slo.degraded_at
    = Some (Slo.Healthy, Slo.Degraded));
  ignore (Slo.observe t slo_config.Slo.critical_at);
  ignore (Slo.observe t slo_config.Slo.critical_at);
  Alcotest.(check bool) "exactly critical_at escalates" true
    (Slo.observe t slo_config.Slo.critical_at
    = Some (Slo.Degraded, Slo.Critical))

let test_slo_recover_margin_exact_edge () =
  (* De-escalation is strict: exactly threshold * margin never recovers,
     anything below does. *)
  let t = Slo.create slo_config in
  for _ = 1 to 3 do
    ignore (Slo.observe t 2.0)
  done;
  Alcotest.(check bool) "critical" true (Slo.level t = Slo.Critical);
  let edge = slo_config.Slo.critical_at *. slo_config.Slo.recover_margin in
  for _ = 1 to 6 do
    Alcotest.(check bool) "exactly at the margin stays critical" true
      (Slo.observe t edge = None)
  done;
  Alcotest.(check bool) "still critical" true (Slo.level t = Slo.Critical);
  let below = edge -. 1e-9 in
  ignore (Slo.observe t below);
  ignore (Slo.observe t below);
  Alcotest.(check bool) "below the margin steps down exactly one level" true
    (Slo.observe t below = Some (Slo.Critical, Slo.Degraded));
  let edge_d = slo_config.Slo.degraded_at *. slo_config.Slo.recover_margin in
  for _ = 1 to 4 do
    Alcotest.(check bool) "degraded margin is strict too" true
      (Slo.observe t edge_d = None)
  done;
  Alcotest.(check bool) "still degraded" true (Slo.level t = Slo.Degraded)

let test_slo_pending_switch_resets_streak () =
  (* A change of candidate target restarts the hysteresis count — two
     ticks toward Degraded plus one toward Critical is not a completed
     transition of either kind. *)
  let t = Slo.create slo_config in
  ignore (Slo.observe t 1.3);
  ignore (Slo.observe t 1.3);
  Alcotest.(check bool) "switching target restarts the count" true
    (Slo.observe t 1.9 = None);
  Alcotest.(check bool) "second critical tick still pending" true
    (Slo.observe t 1.9 = None);
  Alcotest.(check bool) "third completes, jumping straight to critical" true
    (Slo.observe t 1.9 = Some (Slo.Healthy, Slo.Critical));
  (* An in-band tick wipes any pending escalation entirely. *)
  let t2 = Slo.create slo_config in
  ignore (Slo.observe t2 1.3);
  ignore (Slo.observe t2 1.3);
  Alcotest.(check bool) "healthy tick clears pending" true
    (Slo.observe t2 1.0 = None);
  ignore (Slo.observe t2 1.3);
  ignore (Slo.observe t2 1.3);
  Alcotest.(check bool) "streak restarted from zero" true
    (Slo.observe t2 1.3 = Some (Slo.Healthy, Slo.Degraded))

(* --- Admission --- *)

let test_admission_policy () =
  let t = Admission.create ~max_queue:2 in
  Alcotest.(check bool) "critical sheds" true
    (Admission.consider t ~level:Slo.Critical ~has_capacity:true ~session:0
       ~node:1
    = Admission.Shed);
  Alcotest.(check bool) "healthy with room admits" true
    (Admission.consider t ~level:Slo.Healthy ~has_capacity:true ~session:1
       ~node:1
    = Admission.Admit);
  Alcotest.(check bool) "degraded queues" true
    (Admission.consider t ~level:Slo.Degraded ~has_capacity:true ~session:2
       ~node:1
    = Admission.Queue);
  Alcotest.(check bool) "no capacity queues" true
    (Admission.consider t ~level:Slo.Healthy ~has_capacity:false ~session:3
       ~node:2
    = Admission.Queue);
  Alcotest.(check bool) "overflow sheds" true
    (Admission.consider t ~level:Slo.Degraded ~has_capacity:true ~session:4
       ~node:3
    = Admission.Shed);
  Alcotest.(check int) "pending" 2 (Admission.pending t);
  Alcotest.(check bool) "fifo pop" true (Admission.pop t = Some (2, 1));
  Alcotest.(check bool) "abandon removes" true (Admission.abandon t ~session:3);
  Alcotest.(check bool) "abandon unknown is false" true
    (not (Admission.abandon t ~session:99));
  Alcotest.(check bool) "drained queue empty" true (Admission.pop t = None);
  Alcotest.(check int) "admitted" 1 t.Admission.admitted;
  Alcotest.(check int) "queued" 2 t.Admission.queued;
  Alcotest.(check int) "shed" 2 t.Admission.shed;
  Alcotest.(check int) "drained" 1 t.Admission.drained;
  Alcotest.(check int) "abandoned" 1 t.Admission.abandoned

(* --- Trace --- *)

let test_trace_deterministic_and_well_formed () =
  let mk () =
    Trace.churn ~seed:5 ~nodes:30 ~rate:2. ~mean_lifetime:10. ~horizon:50.
  in
  Alcotest.(check bool) "same seed, same trace" true (mk () = mk ());
  (* The raw churn stream is join-ordered (each join carries its future
     leave); [merge] is what produces the time-sorted run order. *)
  let events = Trace.merge ~horizon:50. [ mk () ] in
  let sorted = ref true and last = ref neg_infinity in
  let joined = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      if e.Trace.time < !last then sorted := false;
      last := e.Trace.time;
      Alcotest.(check bool) "inside horizon" true (e.Trace.time <= 50.);
      match e.Trace.kind with
      | Trace.Join { session; node } ->
          Alcotest.(check bool) "node in range" true (node >= 0 && node < 30);
          Hashtbl.replace joined session ()
      | Trace.Leave { session } ->
          Alcotest.(check bool) "leave follows its join" true
            (Hashtbl.mem joined session)
      | _ -> Alcotest.fail "churn produced a non-churn event")
    events;
  Alcotest.(check bool) "sorted by time" true !sorted;
  Alcotest.(check bool) "non-trivial trace" true (Array.length events > 10)

let test_trace_crashes_of_plan () =
  let p = plan "crash:1@5~9+crash:7@3+loss:0.5" in
  let events = Trace.crashes_of_plan p ~servers:4 in
  Alcotest.(check bool) "crash and recovery, actor 7 and loss filtered" true
    (events
    = [
        { Trace.time = 5.; kind = Trace.Crash { server = 1 } };
        { Trace.time = 9.; kind = Trace.Recover { server = 1 } };
      ])

let test_trace_merge_stable () =
  let a = [ { Trace.time = 1.; kind = Trace.Crash { server = 0 } } ] in
  let b = [ { Trace.time = 1.; kind = Trace.Recover { server = 0 } } ] in
  let merged = Trace.merge ~horizon:10. [ a; b ] in
  Alcotest.(check int) "both kept" 2 (Array.length merged);
  Alcotest.(check bool) "tie broken by stream order" true
    (merged.(0).Trace.kind = Trace.Crash { server = 0 })

(* --- Event_log --- *)

let all_kinds =
  [
    Event_log.Join { session = 3; client = 7; server = 1 };
    Event_log.Queued { session = 4 };
    Event_log.Drained { session = 4; client = 8; server = 0 };
    Event_log.Shed { session = 5 };
    Event_log.Leave { session = 3; client = 7 };
    Event_log.Crash { server = 2; migrated = 5; stranded = 1 };
    Event_log.Crash_skipped { server = 0 };
    Event_log.Recover { server = 2 };
    Event_log.Drift { server = 1; factor = 1.3740000000000001 };
    Event_log.Transition
      { from_ = Slo.Healthy; to_ = Slo.Critical; ratio = 1.52; objective = "d" };
    Event_log.Repair { moves = 4; budget = 8; before = 210.5; after = 180.25 };
    Event_log.Protocol_repair
      { attempt = 2; stalled = true; moves = 6; applied = false };
    Event_log.Checkpoint { id = 3 };
    Event_log.Promote { server = 2; promoted = 5; fallback = 1; stranded = 0 };
    Event_log.Standby_refresh { changed = 7 };
    Event_log.Standby_breach { ratio = 3.25; bound = 3.0 };
    Event_log.Recovery { generation = 2; skipped = 1; replayed = 14 };
  ]

let test_event_log_roundtrip () =
  List.iteri
    (fun i kind ->
      let entry = { Event_log.time = 0.1 *. float_of_int i; kind } in
      match Event_log.of_line (Event_log.to_line entry) with
      | Ok entry' ->
          Alcotest.(check bool)
            (Printf.sprintf "kind %d round-trips" i)
            true (entry = entry')
      | Error m -> Alcotest.fail m)
    all_kinds;
  Alcotest.(check bool) "garbage rejected" true
    (match Event_log.of_line "t=1.0 frobnicate x=1" with
    | Error _ -> true
    | Ok _ -> false)

(* --- Soak + Checkpoint --- *)

let small_scenario =
  {
    Soak.default_scenario with
    Soak.seed = 9;
    nodes = 40;
    servers = 4;
    horizon = 60.;
    drift_period = 10.;
    fault = plan "loss:0.1+crash:1@20~45";
  }

let small_config = { Soak.default_config with Soak.checkpoint_every = 20 }

let complete scenario config =
  match Soak.run scenario config with
  | Soak.Completed r -> r
  | Soak.Killed _ -> Alcotest.fail "run killed without kill_after"

let test_checkpoint_codec_roundtrip () =
  match Soak.run ~kill_after:1 small_scenario small_config with
  | Soak.Completed _ -> Alcotest.fail "kill_after ignored"
  | Soak.Killed st -> (
      match Checkpoint.decode (Checkpoint.encode st) with
      | Error m -> Alcotest.fail m
      | Ok st' ->
          Alcotest.(check string) "decode . encode is the identity"
            (Checkpoint.encode st) (Checkpoint.encode st');
          (* a truncated file (kill mid-write without the atomic rename)
             must be rejected, not half-parsed *)
          let text = Checkpoint.encode st in
          let truncated = String.sub text 0 (String.length text - 5) in
          Alcotest.(check bool) "truncated checkpoint rejected" true
            (match Checkpoint.decode truncated with
            | Error _ -> true
            | Ok _ -> false))

let test_soak_kill_resume_identical () =
  let base = complete small_scenario small_config in
  List.iter
    (fun kill_after ->
      match Soak.run ~kill_after small_scenario small_config with
      | Soak.Completed _ -> Alcotest.fail "kill_after ignored"
      | Soak.Killed st -> (
          match Soak.run ~resume_from:st small_scenario small_config with
          | Soak.Killed _ -> Alcotest.fail "resumed run killed"
          | Soak.Completed resumed ->
              Alcotest.(check string)
                (Printf.sprintf "report identical after kill %d" kill_after)
                (Soak.render base) (Soak.render resumed);
              Alcotest.(check string)
                (Printf.sprintf "event log identical after kill %d" kill_after)
                (Event_log.render base.Soak.log)
                (Event_log.render resumed.Soak.log)))
    [ 1; 2; 3 ]

let test_soak_resume_rejects_other_config () =
  match Soak.run ~kill_after:1 small_scenario small_config with
  | Soak.Completed _ -> Alcotest.fail "kill_after ignored"
  | Soak.Killed st -> (
      let other = { small_config with Soak.budget = small_config.Soak.budget + 1 } in
      match Soak.run ~resume_from:st small_scenario other with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "digest mismatch accepted")

let test_soak_guardrails () =
  (* The acceptance scenario: <= 30% loss, one crash/recovery cycle,
     Poisson churn. Steady-state D(A) within 1.25x of a fresh Greedy
     re-solve, never exceeding the per-epoch migration budget — both
     numbers in the report. *)
  let r = complete Soak.default_scenario Soak.default_config in
  Alcotest.(check bool) "steady-state ratio within 1.25x of re-solve" true
    (r.Soak.steady_ratio <= 1.25);
  Alcotest.(check bool) "max epoch moves within budget" true
    (r.Soak.max_epoch_moves <= r.Soak.budget);
  let text = Soak.render r in
  let contains s =
    let n = String.length text and m = String.length s in
    let rec go i = i + m <= n && (String.sub text i m = s || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report states the steady-state ratio" true
    (contains "steady-state ratio");
  Alcotest.(check bool) "report states the epoch budget" true
    (contains "max-epoch-moves")

let test_soak_critical_triggers_protocol_repair () =
  (* An SLO that is always breached forces an immediate Critical
     escalation: the protocol-repair path must run, and admission must
     brown out (shed) from then on. *)
  let scenario = { small_scenario with Soak.fault = plan "loss:0.2" } in
  let config =
    {
      small_config with
      Soak.slo =
        { Slo.degraded_at = 1.0; critical_at = 1.0; hysteresis = 1; recover_margin = 1.0 };
      budget = 20;
    }
  in
  let r = complete scenario config in
  Alcotest.(check bool) "reaches critical" true (r.Soak.slo_level = Slo.Critical);
  Alcotest.(check bool) "protocol epoch ran" true (r.Soak.protocol_epochs >= 1);
  Alcotest.(check bool) "brownout sheds joins" true (r.Soak.shed > 0);
  Alcotest.(check bool) "budget still respected" true
    (r.Soak.max_epoch_moves <= 20)

let test_soak_capacitated_strands_and_recovers () =
  (* Tight capacity + a crash: orphans that cannot be re-homed are
     stranded (counted, sessions dropped), and the run keeps going. *)
  let scenario =
    {
      small_scenario with
      Soak.capacity = Some 8;
      fault = plan "crash:0@20~50+crash:2@30";
    }
  in
  let r = complete scenario small_config in
  Alcotest.(check bool) "run completes" true (r.Soak.events > 0);
  Alcotest.(check bool) "crashes happened" true (r.Soak.crashes >= 1);
  Alcotest.(check bool) "queueing engaged under capacity pressure" true
    (r.Soak.queued > 0)

let test_soak_last_server_crash_refused () =
  (* A single-server scenario: every crash in the plan targets the only
     live server and must be refused, never executed. *)
  let scenario =
    {
      small_scenario with
      Soak.servers = 1;
      drift_period = 0.;
      fault = plan "crash:0@10~20";
    }
  in
  let r = complete scenario small_config in
  Alcotest.(check int) "no crash executed" 0 r.Soak.crashes;
  Alcotest.(check int) "refusal recorded" 1 r.Soak.crashes_skipped;
  Alcotest.(check int) "one server still live" 1 r.Soak.live_servers

(* --- Soak under a load-latency model --- *)

let delay_scenario =
  { small_scenario with Soak.delay = Some (Dia_core.Delay.Queueing { mu = 12. }) }

let test_soak_delay_reports_load_objective () =
  (* With a delay model the session places and repairs against D_load,
     and every SLO transition in the event log says so. An SLO that is
     always breached guarantees at least one transition to look at. *)
  let config =
    {
      small_config with
      Soak.slo =
        { Slo.degraded_at = 1.0; critical_at = 1.5; hysteresis = 1; recover_margin = 1.0 };
    }
  in
  let r = complete delay_scenario config in
  Alcotest.(check (option string))
    "report names the delay model" (Some "mm1:12") r.Soak.delay_model;
  let objectives log =
    List.filter_map
      (fun e ->
        match e.Event_log.kind with
        | Event_log.Transition { objective; _ } -> Some objective
        | _ -> None)
      log
  in
  let objs = objectives r.Soak.log in
  Alcotest.(check bool) "at least one transition logged" true (objs <> []);
  List.iter
    (Alcotest.(check string) "transition driven by the load objective" "d_load")
    objs;
  (* ... and without a delay model the same scenario logs plain "d". *)
  let blind = complete small_scenario config in
  Alcotest.(check (option string)) "no delay model" None blind.Soak.delay_model;
  let blind_objs = objectives blind.Soak.log in
  Alcotest.(check bool) "blind run also transitions" true (blind_objs <> []);
  List.iter
    (Alcotest.(check string) "blind transition driven by D" "d")
    blind_objs

let test_soak_delay_kill_resume_identical () =
  (* The delay-bearing digest extension must survive the checkpoint
     codec: kill/resume stays bit-identical under a queueing model. *)
  let base = complete delay_scenario small_config in
  Alcotest.(check (option string))
    "delay model survives to the report" (Some "mm1:12") base.Soak.delay_model;
  List.iter
    (fun kill_after ->
      match Soak.run ~kill_after delay_scenario small_config with
      | Soak.Completed _ -> Alcotest.fail "kill_after ignored"
      | Soak.Killed st -> (
          match Checkpoint.decode (Checkpoint.encode st) with
          | Error m -> Alcotest.fail m
          | Ok st -> (
              match Soak.run ~resume_from:st delay_scenario small_config with
              | Soak.Killed _ -> Alcotest.fail "resumed run killed"
              | Soak.Completed resumed ->
                  Alcotest.(check string)
                    (Printf.sprintf "report identical after kill %d" kill_after)
                    (Soak.render base) (Soak.render resumed);
                  Alcotest.(check string)
                    (Printf.sprintf "event log identical after kill %d" kill_after)
                    (Event_log.render base.Soak.log)
                    (Event_log.render resumed.Soak.log))))
    [ 1; 2 ]

let test_soak_delay_rejects_coreset () =
  (* Coreset buckets hide the true per-server load, so a delay model in
     weighted mode must be refused up front, not silently mis-scored. *)
  let scenario = { delay_scenario with Soak.coreset_eps = Some 0.1 } in
  match Soak.run scenario small_config with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "delay + coreset accepted"

(* --- qcheck: determinism under random kill points --- *)

let prop_soak_deterministic_under_random_kills =
  QCheck.Test.make ~name:"soak kill/resume is bit-identical at any kill point"
    ~count:12
    QCheck.(triple (int_bound 1000) (int_range 5 40) (int_range 1 3))
    (fun (seed, checkpoint_every, kill_after) ->
      let scenario =
        {
          small_scenario with
          Soak.seed;
          capacity = (if seed mod 2 = 0 then Some 12 else None);
        }
      in
      let config = { small_config with Soak.checkpoint_every } in
      match Soak.run scenario config with
      | Soak.Killed _ -> false
      | Soak.Completed base -> (
          match Soak.run ~kill_after scenario config with
          | Soak.Completed r ->
              (* not enough checkpoints to kill at: the run must then be
                 the uninterrupted one *)
              Soak.render r = Soak.render base
          | Soak.Killed st -> (
              match Checkpoint.decode (Checkpoint.encode st) with
              | Error _ -> false
              | Ok st -> (
                  match Soak.run ~resume_from:st scenario config with
                  | Soak.Killed _ -> false
                  | Soak.Completed resumed ->
                      Soak.render resumed = Soak.render base
                      && Event_log.render resumed.Soak.log
                         = Event_log.render base.Soak.log))))

let suite =
  [
    Alcotest.test_case "slo hysteresis and level jumps" `Quick test_slo_hysteresis;
    Alcotest.test_case "slo recover margin damps flapping" `Quick
      test_slo_recover_margin;
    Alcotest.test_case "slo ignores non-finite ratios" `Quick
      test_slo_ignores_non_finite;
    Alcotest.test_case "slo state codec round-trips" `Quick test_slo_codec_roundtrip;
    Alcotest.test_case "slo config validation" `Quick test_slo_validate;
    Alcotest.test_case "slo thresholds are closed on the left" `Quick
      test_slo_exact_threshold_edges;
    Alcotest.test_case "slo recover margin is strict" `Quick
      test_slo_recover_margin_exact_edge;
    Alcotest.test_case "slo pending-target switch resets streak" `Quick
      test_slo_pending_switch_resets_streak;
    Alcotest.test_case "admission policy and counters" `Quick test_admission_policy;
    Alcotest.test_case "churn trace deterministic and well-formed" `Quick
      test_trace_deterministic_and_well_formed;
    Alcotest.test_case "crash schedule lifted from fault plan" `Quick
      test_trace_crashes_of_plan;
    Alcotest.test_case "trace merge is stable" `Quick test_trace_merge_stable;
    Alcotest.test_case "event log round-trips every record kind" `Quick
      test_event_log_roundtrip;
    Alcotest.test_case "checkpoint codec round-trips, rejects truncation" `Quick
      test_checkpoint_codec_roundtrip;
    Alcotest.test_case "kill/resume is bit-identical" `Quick
      test_soak_kill_resume_identical;
    Alcotest.test_case "resume rejects a different config" `Quick
      test_soak_resume_rejects_other_config;
    Alcotest.test_case "guardrails: steady ratio and epoch budget" `Quick
      test_soak_guardrails;
    Alcotest.test_case "critical triggers protocol repair and brownout" `Quick
      test_soak_critical_triggers_protocol_repair;
    Alcotest.test_case "capacitated chaos run survives" `Quick
      test_soak_capacitated_strands_and_recovers;
    Alcotest.test_case "last-server crash refused" `Quick
      test_soak_last_server_crash_refused;
    Alcotest.test_case "delay soak logs the load objective" `Quick
      test_soak_delay_reports_load_objective;
    Alcotest.test_case "delay soak kill/resume is bit-identical" `Quick
      test_soak_delay_kill_resume_identical;
    Alcotest.test_case "delay soak rejects coreset mode" `Quick
      test_soak_delay_rejects_coreset;
    QCheck_alcotest.to_alcotest prop_soak_deterministic_under_random_kills;
  ]
