(* Tests for Dia_sim.Fault and the fault tolerance of the hardened
   Dgreedy_protocol: seeded plans must replay identically, the network
   must realise each fault kind faithfully, and the protocol must still
   terminate with a valid locally-optimal assignment under loss and
   mid-run server crashes. *)

module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Dynamic = Dia_core.Dynamic
module Engine = Dia_sim.Engine
module Network = Dia_sim.Network
module Fault = Dia_sim.Fault
module Checker = Dia_sim.Checker
module Dgreedy_protocol = Dia_sim.Dgreedy_protocol
module Matrix = Dia_latency.Matrix

let instance ?capacity seed ~n ~k =
  let matrix = Dia_latency.Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  Problem.all_nodes_clients ?capacity matrix ~servers

let test_seeded_replay () =
  (* The same plan and seed must answer the same query sequence with the
     same decisions, bit for bit. *)
  let plan =
    Fault.all
      [
        Fault.loss ~rate:0.3 ();
        Fault.duplication ~rate:0.2 ~copies:2 ();
        Fault.spike ~rate:0.1 ~extra:50. ();
      ]
  in
  let trace plan =
    let t = Fault.instantiate ~seed:42 plan in
    List.init 200 (fun i ->
        Fault.decide t ~now:(float_of_int i) ~src:(i mod 5) ~dst:((i + 1) mod 5))
  in
  Alcotest.(check bool) "identical traces" true (trace plan = trace plan);
  let other = trace plan in
  let t = Fault.instantiate ~seed:43 plan in
  let differs =
    List.exists
      (fun i ->
        Fault.decide t ~now:(float_of_int i) ~src:(i mod 5) ~dst:((i + 1) mod 5)
        <> List.nth other i)
      (List.init 200 Fun.id)
  in
  Alcotest.(check bool) "different seed diverges" true differs

let test_directed_loss_partitions_one_link () =
  (* Loss at rate 1.0 on the directed link 0 -> 1 kills exactly that
     link; 1 -> 0 and everything else still deliver. *)
  let engine = Engine.create () in
  let m = Matrix.create 3 in
  Matrix.set m 0 1 5.;
  Matrix.set m 0 2 5.;
  Matrix.set m 1 2 5.;
  let fault = Fault.instantiate (Fault.loss ~src:0 ~dst:1 ~rate:1.0 ()) in
  let net = Network.of_matrix ~fault engine m in
  let got = Array.make 3 0 in
  for a = 0 to 2 do
    Network.on_receive net a (fun ~src:_ () -> got.(a) <- got.(a) + 1)
  done;
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:1 ~dst:0 ();
  Network.send net ~src:0 ~dst:2 ();
  Network.send net ~src:2 ~dst:1 ();
  Engine.run engine;
  Alcotest.(check (list int)) "only 0->1 lost" [ 1; 1; 1 ] (Array.to_list got);
  Alcotest.(check int) "one drop counted" 1 (Network.messages_dropped net)

let test_crash_window () =
  (* A crashed actor receives nothing during its window — including
     messages in flight when it goes down — and works again after
     recovery. *)
  let engine = Engine.create () in
  let fault = Fault.instantiate (Fault.crash ~at:10. ~recover_at:30. 1) in
  let net =
    Network.create ~fault engine ~actors:2 ~latency:(fun _ _ -> 5.)
  in
  let arrivals = ref [] in
  Network.on_receive net 1 (fun ~src:_ () ->
      arrivals := Engine.now engine :: !arrivals);
  Engine.schedule engine 0. (fun () -> Network.send net ~src:0 ~dst:1 ());
  (* Sent before the crash, arrives inside the window: lost. *)
  Engine.schedule engine 8. (fun () -> Network.send net ~src:0 ~dst:1 ());
  Engine.schedule engine 15. (fun () -> Network.send net ~src:0 ~dst:1 ());
  Engine.schedule engine 40. (fun () -> Network.send net ~src:0 ~dst:1 ());
  Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "before and after only" [ 5.; 45. ]
    (List.rev !arrivals);
  Alcotest.(check int) "window losses counted" 2 (Network.messages_dropped net);
  Alcotest.(check bool) "down during window" true
    (Fault.down fault ~now:20. 1);
  Alcotest.(check bool) "up after recovery" false (Fault.down fault ~now:30. 1)

let test_duplication_copies () =
  let engine = Engine.create () in
  let fault = Fault.instantiate (Fault.duplication ~rate:1.0 ~copies:2 ()) in
  let net = Network.create ~fault engine ~actors:2 ~latency:(fun _ _ -> 1.) in
  let count = ref 0 in
  Network.on_receive net 1 (fun ~src:_ () -> incr count);
  Network.send net ~src:0 ~dst:1 ();
  Engine.run engine;
  Alcotest.(check int) "three deliveries" 3 !count;
  Alcotest.(check int) "two extra copies counted" 2
    (Network.messages_duplicated net);
  Alcotest.(check int) "one send counted" 1 (Network.messages_sent net)

let test_partition_window () =
  (* During the window, messages crossing the cut vanish in both
     directions; within each side they flow, and the cut heals. *)
  let engine = Engine.create () in
  let fault =
    Fault.instantiate (Fault.partition ~at:10. ~until:20. ~side:[ 0; 1 ])
  in
  let net = Network.create ~fault engine ~actors:4 ~latency:(fun _ _ -> 1.) in
  let got = ref [] in
  for a = 0 to 3 do
    Network.on_receive net a (fun ~src tag -> got := (src, a, tag) :: !got)
  done;
  Engine.schedule engine 12. (fun () ->
      Network.send net ~src:0 ~dst:2 "cross";
      Network.send net ~src:2 ~dst:1 "cross";
      Network.send net ~src:0 ~dst:1 "same-side";
      Network.send net ~src:2 ~dst:3 "same-side");
  Engine.schedule engine 25. (fun () -> Network.send net ~src:0 ~dst:2 "healed");
  Engine.run engine;
  let tags = List.sort compare (List.map (fun (_, _, t) -> t) !got) in
  Alcotest.(check (list string)) "cut enforced then healed"
    [ "healed"; "same-side"; "same-side" ] tags;
  Alcotest.(check int) "crossings counted" 2 (Network.messages_dropped net)

let test_undeliverable_counted () =
  let engine = Engine.create () in
  let net = Network.create engine ~actors:2 ~latency:(fun _ _ -> 1.) in
  Network.send net ~src:0 ~dst:1 ();
  Engine.run engine;
  Alcotest.(check int) "handler-less arrival observed" 1
    (Network.undeliverable net)

let check_locally_optimal p (result : Dgreedy_protocol.result) =
  let a = Assignment.to_array result.assignment in
  let d = result.objective in
  let improvable = ref false in
  for c = 0 to Problem.num_clients p - 1 do
    let original = a.(c) in
    for s = 0 to Problem.num_servers p - 1 do
      if s <> original then begin
        a.(c) <- s;
        let d' = Objective.max_interaction_path p (Assignment.unsafe_of_array a) in
        if d' < d -. 1e-6 then improvable := true;
        a.(c) <- original
      end
    done
  done;
  Alcotest.(check bool) "no improving move" false !improvable

let test_dgreedy_under_loss () =
  (* 20% uniform loss: retransmission must mask it completely — the run
     terminates, every client is assigned, and the result is locally
     optimal on the true matrix (NTP-style probing keeps measured
     distances exact under loss). *)
  let p = instance 3 ~n:20 ~k:3 in
  let fault = Fault.instantiate ~seed:7 (Fault.loss ~rate:0.2 ()) in
  let result = Dgreedy_protocol.run ~fault p in
  Alcotest.(check int) "all assigned" 20 (Assignment.num_clients result.assignment);
  Alcotest.(check bool) "losses actually happened" true
    (result.faults.dropped > 0);
  Alcotest.(check bool) "retransmissions happened" true
    (result.faults.retransmissions > 0);
  (match Checker.validate_assignment p result.assignment with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_locally_optimal p result

let test_dgreedy_under_loss_replays () =
  let p = instance 5 ~n:15 ~k:3 in
  let run () =
    let fault = Fault.instantiate ~seed:11 (Fault.loss ~rate:0.15 ()) in
    Dgreedy_protocol.run ~fault p
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check (float 0.)) "same objective" r1.objective r2.objective;
  Alcotest.(check int) "same message count" r1.messages r2.messages;
  Alcotest.(check bool) "same assignment" true
    (Assignment.to_array r1.assignment = Assignment.to_array r2.assignment)

let test_dgreedy_server_crash () =
  (* One server crashes mid-run (after the bootstrap settles): the
     protocol must terminate with every client on a live server. *)
  let p = instance 4 ~n:18 ~k:3 in
  let crash_at = Dgreedy_protocol.settle_time p *. 1.5 in
  let fault =
    Fault.instantiate ~seed:3
      (Fault.all [ Fault.loss ~rate:0.05 (); Fault.crash ~at:crash_at 1 ])
  in
  let result = Dgreedy_protocol.run ~fault p in
  Alcotest.(check int) "all assigned" 18 (Assignment.num_clients result.assignment);
  let live s = not (Fault.down fault ~now:result.wall_duration s) in
  Alcotest.(check bool) "crashed server is down" false (live 1);
  (match Checker.validate_assignment ~live p result.assignment with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_fail_server_report () =
  let n = 30 and k = 4 in
  let matrix = Dia_latency.Synthetic.internet_like ~seed:9 n in
  let servers = Dia_placement.Placement.random ~seed:9 ~k ~n in
  let t = Dynamic.create matrix ~servers in
  for node = 0 to n - 1 do
    ignore (Dynamic.join t ~node)
  done;
  let before = Dynamic.objective t in
  let report = Dynamic.fail_server_report t 2 in
  Alcotest.(check int) "failed server recorded" 2 report.Dynamic.failed_server;
  Alcotest.(check (float 1e-9)) "before captured" before
    report.Dynamic.objective_before;
  Alcotest.(check (float 1e-9)) "after matches session" (Dynamic.objective t)
    report.Dynamic.objective_after;
  Alcotest.(check bool) "factor at least 1" true (report.Dynamic.factor >= 1. -. 1e-9);
  Alcotest.(check bool) "resolve no better than after" true
    (report.Dynamic.objective_resolve <= report.Dynamic.objective_after +. 1e-9);
  Alcotest.(check (list int)) "server gone from rotation" [ 0; 1; 3 ]
    (Dynamic.active_servers t);
  (* Every migrated client really left the failed server. *)
  let _, a = Dynamic.snapshot t in
  Array.iter
    (fun s -> Alcotest.(check bool) "no client on failed server" true (s <> 2))
    (Assignment.to_array a)

let test_validate_assignment_errors () =
  let p = instance 1 ~n:8 ~k:2 in
  let a = Assignment.unsafe_of_array (Array.make 8 0) in
  (match Checker.validate_assignment p a with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Checker.validate_assignment ~live:(fun s -> s <> 0) p a with
  | Ok () -> Alcotest.fail "dead-server assignment accepted"
  | Error _ -> ());
  match Checker.validate_assignment p (Assignment.unsafe_of_array (Array.make 7 0)) with
  | Ok () -> Alcotest.fail "wrong client count accepted"
  | Error _ -> ()

(* --- the fault mini-DSL --- *)

let test_dsl_roundtrip () =
  List.iter
    (fun spec ->
      match Fault.of_string spec with
      | Error m -> Alcotest.fail (Printf.sprintf "%s: %s" spec m)
      | Ok p -> (
          let canonical = Fault.to_string p in
          match Fault.of_string canonical with
          | Error m -> Alcotest.fail (Printf.sprintf "%s: %s" canonical m)
          | Ok p' ->
              Alcotest.(check bool)
                (Printf.sprintf "%s round-trips" spec)
                true (Fault.equal p p');
              Alcotest.(check string)
                (Printf.sprintf "%s canonical form is stable" spec)
                canonical (Fault.to_string p')))
    [
      "loss:0.15+crash:3@2.0~5.0";
      "loss:0.25@1>4";
      "dup:0.2x3@2>*";
      "spike:0.5~12.5@*>2";
      "part:1.0~2.5@0,1,4";
      "crash:7@0.5";
      "reliable";
      "";
      "none";
      "loss:1+dup:1x2+spike:1~0.125+crash:0@0~0.0009765625";
    ]

let test_dsl_rejects_invalid () =
  List.iter
    (fun spec ->
      match Fault.of_string spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S accepted" spec))
    [
      "loss:1.5";
      "loss:";
      "bogus:1";
      "crash:0@-1";
      "crash:0@5~2";
      "part:2~1@0";
      "part:1~2@";
      "dup:0.5x0";
      "spike:0.5";
      "loss:0.1@x>y";
      "loss:0.1+";
      "+loss:0.1";
      "loss:0.1++crash:1@2";
      "part:1~2@0,,1";
      "part:1~2@0,1,";
      "part:1~2@,0";
      "loss:0.1@1>2>3";
      "crash:1@2~3~4";
    ]

let test_dsl_errors_name_the_offender () =
  (* Strict parsing is only useful if the message points at the problem:
     every rejection names the atom number and character position. *)
  List.iter
    (fun (spec, fragment) ->
      match Fault.of_string spec with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S accepted" spec)
      | Error m ->
          let contains s =
            let n = String.length m and k = String.length s in
            let rec go i = i + k <= n && (String.sub m i k = s || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "%S error %S mentions %S" spec m fragment)
            true (contains fragment))
    [
      ("loss:0.1+", "atom 2 at char 9");
      ("+loss:0.1", "atom 1 at char 0");
      ("loss:0.1+bogus:1", "atom 2 at char 9");
      ("part:1~2@0,,1", "empty entry 2");
      ("part:1~2@0,1,", "empty entry 3");
    ]

let test_pp_plan_matches_to_string () =
  let p =
    Fault.all
      [ Fault.loss ~rate:0.125 (); Fault.crash ~recover_at:5. ~at:2. 3 ]
  in
  Alcotest.(check string) "pp_plan renders the canonical form"
    (Fault.to_string p)
    (Format.asprintf "%a" Fault.pp_plan p)

(* Random rules through the smart constructors — shared by the
   round-trip and malformed-input properties. *)
let gen_rule rng =
    let float01 = float_of_int (Random.State.int rng 1000) /. 1000. in
    let actor () = Random.State.int rng 10 in
    let endpoint () = if Random.State.bool rng then None else Some (actor ()) in
    match Random.State.int rng 5 with
    | 0 -> Fault.loss ?src:(endpoint ()) ?dst:(endpoint ()) ~rate:float01 ()
    | 1 ->
        Fault.duplication ?src:(endpoint ()) ?dst:(endpoint ())
          ~copies:(1 + Random.State.int rng 3)
          ~rate:float01 ()
    | 2 ->
        Fault.spike ?src:(endpoint ()) ?dst:(endpoint ()) ~rate:float01
          ~extra:(Random.State.float rng 50.) ()
    | 3 ->
        let at = Random.State.float rng 10. in
        Fault.partition ~at ~until:(at +. 0.5 +. Random.State.float rng 5.)
          ~side:[ actor (); 10 + actor () ]
    | _ ->
        let at = Random.State.float rng 10. in
        let recover_at =
          if Random.State.bool rng then None
          else Some (at +. 0.5 +. Random.State.float rng 5.)
        in
        Fault.crash ?recover_at ~at (actor ())

let prop_dsl_roundtrips_random_plans =
  (* Random plans through the smart constructors: the canonical
     rendering must parse back to a structurally equal plan. *)
  QCheck.Test.make ~name:"fault DSL round-trips random plans" ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_range 0 6))
    (fun (seed, rules) ->
      let rng = Random.State.make [| seed; 0xd51 |] in
      let p = Fault.all (List.init rules (fun _ -> gen_rule rng)) in
      match Fault.of_string (Fault.to_string p) with
      | Ok p' -> Fault.equal p p' && Fault.to_string p' = Fault.to_string p
      | Error _ -> false)

let prop_dsl_rejects_malformed_suffixes =
  (* Appending garbage to any canonical plan string must be rejected —
     the strict parser never silently drops a trailing fragment. The
     suffixes are chosen so no rule can absorb them (no digits — a
     trailing number would extend a float; no "xN" — a dup rule printed
     without an explicit copies count would accept it). *)
  let suffixes = [| "+"; "++"; ","; ",,"; "@"; "~"; ":"; "+junk" |] in
  QCheck.Test.make ~name:"fault DSL rejects any malformed suffix" ~count:200
    QCheck.(triple (int_bound 1_000_000) (int_range 1 6) (int_bound 1_000_000))
    (fun (seed, rules, pick) ->
      let rng = Random.State.make [| seed; 0xfa17 |] in
      let p = Fault.all (List.init rules (fun _ -> gen_rule rng)) in
      let spec = Fault.to_string p ^ suffixes.(pick mod Array.length suffixes) in
      match Fault.of_string spec with Error _ -> true | Ok _ -> false)

let suite =
  [
    Alcotest.test_case "seeded plans replay identically" `Quick test_seeded_replay;
    Alcotest.test_case "fault DSL round-trips" `Quick test_dsl_roundtrip;
    Alcotest.test_case "fault DSL rejects invalid specs" `Quick
      test_dsl_rejects_invalid;
    Alcotest.test_case "fault DSL errors name the offending atom" `Quick
      test_dsl_errors_name_the_offender;
    Alcotest.test_case "pp_plan matches to_string" `Quick
      test_pp_plan_matches_to_string;
    QCheck_alcotest.to_alcotest prop_dsl_roundtrips_random_plans;
    QCheck_alcotest.to_alcotest prop_dsl_rejects_malformed_suffixes;
    Alcotest.test_case "loss 1.0 kills exactly one directed link" `Quick
      test_directed_loss_partitions_one_link;
    Alcotest.test_case "crash window drops in-flight and recovers" `Quick
      test_crash_window;
    Alcotest.test_case "duplication delivers extra copies" `Quick
      test_duplication_copies;
    Alcotest.test_case "partition cuts and heals" `Quick test_partition_window;
    Alcotest.test_case "handler-less arrivals counted" `Quick
      test_undeliverable_counted;
    Alcotest.test_case "dgreedy under 20% loss stays locally optimal" `Quick
      test_dgreedy_under_loss;
    Alcotest.test_case "faulty dgreedy runs replay identically" `Quick
      test_dgreedy_under_loss_replays;
    Alcotest.test_case "dgreedy survives a mid-run server crash" `Quick
      test_dgreedy_server_crash;
    Alcotest.test_case "fail_server_report is consistent" `Quick
      test_fail_server_report;
    Alcotest.test_case "validate_assignment catches bad assignments" `Quick
      test_validate_assignment_errors;
  ]
