(* Golden-file regression tests: the CSV exports of Fig. 9 and Fig. 10
   under a tiny fixed-seed profile are pinned under test/golden/. The
   comparison is field-by-field with a numeric tolerance, so harmless
   float churn (evaluation-order refactors) passes while a real change
   in the computed series fails loudly. Regenerate deliberately by
   rerunning the figure with the profile below and overwriting the
   file. *)

module Config = Dia_experiments.Config

let tiny =
  {
    Config.label = "tiny";
    nodes = Some 80;
    runs = 4;
    server_counts = [ 5; 10 ];
    fixed_servers = 8;
    paper_capacities = [ 25; 250 ];
  }

let tolerance = 1e-4

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let split_lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

let check_csv ~name ~golden_path actual =
  let golden = split_lines (read_file golden_path)
  and actual = split_lines actual in
  Alcotest.(check int) (name ^ ": row count") (List.length golden)
    (List.length actual);
  List.iteri
    (fun row (g, a) ->
      let gf = String.split_on_char ',' g and af = String.split_on_char ',' a in
      if List.length gf <> List.length af then
        Alcotest.failf "%s row %d: field count %d <> %d" name row
          (List.length gf) (List.length af);
      List.iteri
        (fun col (gv, av) ->
          match (float_of_string_opt gv, float_of_string_opt av) with
          | Some gx, Some ax ->
              if Float.abs (gx -. ax) > tolerance *. Float.max 1. (Float.abs gx)
              then
                Alcotest.failf "%s row %d col %d: %s <> golden %s" name row col
                  av gv
          | _ ->
              if gv <> av then
                Alcotest.failf "%s row %d col %d: %S <> golden %S" name row col
                  av gv)
        (List.combine gf af))
    (List.combine golden actual)

let test_fig9 () =
  let r = Dia_experiments.Fig9.run ~profile:tiny () in
  check_csv ~name:"fig9" ~golden_path:"golden/fig9.csv"
    (Dia_experiments.Fig9.csv r)

let test_fig10 () =
  let r = Dia_experiments.Fig10.run ~profile:tiny () in
  check_csv ~name:"fig10" ~golden_path:"golden/fig10.csv"
    (Dia_experiments.Fig10.csv r)

let test_load_sweep () =
  let r = Dia_experiments.Load_sweep.run ~profile:tiny () in
  check_csv ~name:"load_sweep" ~golden_path:"golden/load_sweep.csv"
    (Dia_experiments.Load_sweep.csv r)

let suite =
  [
    Alcotest.test_case "fig9 csv matches golden" `Slow test_fig9;
    Alcotest.test_case "fig10 csv matches golden" `Slow test_fig10;
    Alcotest.test_case "load sweep csv matches golden" `Slow test_load_sweep;
  ]
