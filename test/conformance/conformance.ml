(* The conformance suite: drive the oracle over thousands of generated
   instances and pin the harness's own behaviour (generators, per-event
   simulation checker, pool determinism). Instance count comes from
   DIA_CONFORMANCE_COUNT (default 2000) so quick local iterations can
   shrink it; the instance seeds are absolute, so any failure printed
   here replays with `dia oracle --seed N --count 1`. *)

module Gen = Dia_oracle.Gen
module Invariant = Dia_oracle.Invariant
module Differential = Dia_oracle.Differential
module Sim_invariant = Dia_oracle.Sim_invariant
module Oracle = Dia_oracle.Oracle
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Algorithm = Dia_core.Algorithm
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound
module Brute_force = Dia_core.Brute_force
module Clock = Dia_core.Clock
module Workload = Dia_sim.Workload
module Pool = Dia_parallel.Pool

let conformance_count =
  match Sys.getenv_opt "DIA_CONFORMANCE_COUNT" with
  | Some value -> (
      match int_of_string_opt (String.trim value) with
      | Some count when count >= 1 -> count
      | _ -> failwith "DIA_CONFORMANCE_COUNT must be a positive integer")
  | None -> 2000

let base_seed = 1

(* The oracle itself: every algorithm, every theorem, thousands of
   instances, at whatever DIA_JOBS is in effect. *)
let test_oracle_suite () =
  let report = Oracle.run ~count:conformance_count ~seed:base_seed () in
  if not (Oracle.ok report) then Alcotest.fail (Oracle.render report);
  Alcotest.(check int) "instances" conformance_count report.Oracle.instances;
  (* A quarter of the seed line is brute-force sized by construction;
     leave slack for sampling noise. *)
  Alcotest.(check bool) "enough brute-force cross-checks" true
    (report.Oracle.brute_checked * 5 >= conformance_count);
  Alcotest.(check bool) "simulation slice ran" true
    (report.Oracle.sim_checked > 0);
  Alcotest.(check bool) "lossy-transport slice ran" true
    (conformance_count < 500 || report.Oracle.transport_checked > 0);
  (* The landmark-index differential must exercise both sides of the
     metric gate: instances whose triangle bounds verify (pruned path)
     and instances that fall back to the exhaustive scan. Measured on
     the default seed line: roughly 5:3 verified to fallback. *)
  Alcotest.(check bool) "metric landmark indexes seen" true
    (conformance_count < 100 || report.Oracle.index_metric > 0);
  Alcotest.(check bool) "exhaustive-fallback indexes seen" true
    (conformance_count < 100
    || report.Oracle.index_metric < report.Oracle.instances)

let test_report_jobs_identity () =
  let r1 = Oracle.run ~jobs:1 ~count:120 ~seed:9000 () in
  let r4 = Oracle.run ~jobs:4 ~count:120 ~seed:9000 () in
  Alcotest.(check bool) "identical reports for jobs 1 and 4" true (r1 = r4)

let test_outcome_pure () =
  let a = Differential.check_instance ~seed:base_seed in
  let b = Differential.check_instance ~seed:base_seed in
  Alcotest.(check bool) "check_instance is a pure function of the seed" true
    (a = b)

(* Generator sanity, over the qcheck-driven descriptor space (which
   includes shapes the seed line never emits, e.g. hand-shrunk ones). *)

let qcheck_cases = 150

let to_alcotest = QCheck_alcotest.to_alcotest

let prop_instantiate_valid =
  QCheck.Test.make ~count:qcheck_cases ~name:"generated instances are well-formed"
    Gen.arbitrary (fun d ->
      let p = Gen.instantiate d in
      let n = Problem.num_clients p and k = Problem.num_servers p in
      n >= 1 && k >= 1
      && (match Problem.capacity p with
         | None -> not (Gen.brute_sized d) || true
         | Some c -> c * k >= n))

let prop_nearest_valid_and_dominates_lb =
  QCheck.Test.make ~count:qcheck_cases
    ~name:"nearest-server is valid and dominates LB on any instance"
    Gen.arbitrary (fun d ->
      let p = Gen.instantiate d in
      let a = Algorithm.run Algorithm.Nearest_server p in
      let lb = Lower_bound.compute p in
      Invariant.assignment_valid p a = Ok ()
      && Invariant.dominates_lb ~lb ~label:"nearest"
           (Objective.max_interaction_path p a)
         = Ok ())

let prop_evaluator_metamorphic =
  QCheck.Test.make ~count:qcheck_cases
    ~name:"D and LB invariant under relabeling, linear under scaling"
    Gen.arbitrary (fun d ->
      let p = Gen.instantiate d in
      let a = Algorithm.run Algorithm.Nearest_server p in
      Invariant.evaluator_relabel_invariant ~seed:d.Gen.seed p a = Ok ()
      && Invariant.evaluator_scale_invariant p a = Ok ())

let prop_clock_tight =
  QCheck.Test.make ~count:qcheck_cases
    ~name:"synthesized clock is feasible and tight on any instance"
    Gen.arbitrary (fun d ->
      let p = Gen.instantiate d in
      let a = Algorithm.run Algorithm.Nearest_server p in
      Invariant.clock_tight p a = Ok ())

let prop_brute_bounds =
  QCheck.Test.make ~count:40
    ~name:"LB <= OPT <= every heuristic on brute-force-sized instances"
    Gen.arbitrary (fun d ->
      let d = { d with Gen.nodes = min d.Gen.nodes 9; servers = min d.Gen.servers 3 } in
      QCheck.assume (Gen.brute_sized d);
      let p = Gen.instantiate d in
      let opt = Brute_force.optimal_value p in
      let lb = Lower_bound.compute p in
      let nearest =
        Objective.max_interaction_path p (Algorithm.run Algorithm.Nearest_server p)
      in
      Invariant.lb_at_most_opt ~lb ~opt = Ok ()
      && Invariant.at_least_opt ~opt ~label:"nearest" nearest = Ok ())

(* The per-event simulation checker: a clean run is silent, and each
   class of breach is actually detected (negative controls). *)

let small_problem () =
  let matrix = Dia_latency.Synthetic.euclidean ~seed:5 ~n:8 ~side:200. in
  Problem.all_nodes_clients matrix ~servers:[| 0; 3 |]

let test_sim_clean_run () =
  let p = small_problem () in
  let a = Algorithm.run Algorithm.Nearest_server p in
  let clock = Clock.synthesize p a in
  let workload =
    Workload.rounds ~clients:(Problem.num_clients p) ~rounds:3
      ~period:(0.6 *. clock.Clock.delta)
  in
  Alcotest.(check (list string)) "no violations" []
    (Sim_invariant.check_run p a clock workload)

let test_sim_detects_infeasible_clock () =
  let p = small_problem () in
  let a = Algorithm.run Algorithm.Nearest_server p in
  let clock = Clock.synthesize p a in
  let starved = { clock with Clock.delta = 0.5 *. clock.Clock.delta } in
  let workload = Workload.rounds ~clients:(Problem.num_clients p) ~rounds:2 ~period:50. in
  let violations = Sim_invariant.check_run p a starved workload in
  Alcotest.(check bool) "late events detected" true (violations <> []);
  Alcotest.(check (list string)) "structural invariants still hold" []
    (Sim_invariant.check_run ~expect_feasible:false p a starved workload)

let test_sim_finalize_completeness () =
  let checker = Sim_invariant.create ~delta:100. () in
  Sim_invariant.monitor checker
    (Dia_sim.Protocol.Issued { Workload.op_id = 0; issuer = 0; issue_time = 0. });
  Sim_invariant.finalize checker ~servers:2 ~clients:3;
  match Sim_invariant.violations checker with
  | [] -> Alcotest.fail "an unexecuted operation went unreported"
  | _ -> ()

let test_sim_detects_wrong_delta () =
  let p = small_problem () in
  let a = Algorithm.run Algorithm.Nearest_server p in
  let clock = Clock.synthesize p a in
  let checker =
    Sim_invariant.create ~delta:(clock.Clock.delta +. 7.) ~expect_feasible:true ()
  in
  let workload = Workload.rounds ~clients:(Problem.num_clients p) ~rounds:1 ~period:40. in
  let report =
    Dia_sim.Protocol.run ~monitor:(Sim_invariant.monitor checker) p a clock workload
  in
  Sim_invariant.finalize checker ~servers:report.Dia_sim.Protocol.servers
    ~clients:report.Dia_sim.Protocol.clients;
  Alcotest.(check bool) "interaction-time mismatch detected" true
    (not (Sim_invariant.ok checker))

(* Generator pins. *)

let test_descriptor_deterministic () =
  for seed = 0 to 50 do
    let a = Gen.descriptor_of_seed seed and b = Gen.descriptor_of_seed seed in
    if a <> b then Alcotest.fail "descriptor_of_seed is not deterministic"
  done

let test_instantiate_deterministic () =
  let d = Gen.descriptor_of_seed 17 in
  let p = Gen.instantiate d and q = Gen.instantiate d in
  Alcotest.(check bool) "same latency matrix" true
    (Dia_latency.Matrix.equal (Problem.latency p) (Problem.latency q));
  Alcotest.(check bool) "same clients" true
    (Problem.clients p = Problem.clients q);
  Alcotest.(check bool) "same capacity" true
    (Problem.capacity p = Problem.capacity q)

let test_every_kind_reachable () =
  let seen = Hashtbl.create 8 in
  for seed = 0 to 400 do
    let d = Gen.descriptor_of_seed seed in
    Hashtbl.replace seen d.Gen.kind ()
  done;
  Alcotest.(check int) "all instance kinds appear in the seed line"
    (List.length Gen.kinds) (Hashtbl.length seen)

let test_capacity_always_feasible () =
  for seed = 0 to 300 do
    let d = Gen.descriptor_of_seed seed in
    let p = Gen.instantiate d in
    match Problem.capacity p with
    | None -> ()
    | Some c ->
        if c * Problem.num_servers p < Problem.num_clients p then
          Alcotest.failf "seed %d: capacity %d infeasible" seed c
  done

let () =
  let seed =
    match Sys.getenv_opt "DIA_QCHECK_SEED" with
    | Some value -> (
        match int_of_string_opt (String.trim value) with
        | Some seed -> seed
        | None -> failwith "DIA_QCHECK_SEED must be an integer")
    | None ->
        Random.self_init ();
        Random.int 1_000_000_000
  in
  Unix.putenv "QCHECK_SEED" (string_of_int seed);
  let run () =
    Alcotest.run ~and_exit:false "conformance"
      [
        ( "oracle",
          [
            Alcotest.test_case "full suite" `Slow test_oracle_suite;
            Alcotest.test_case "report identical across jobs" `Slow
              test_report_jobs_identity;
            Alcotest.test_case "outcome pure in the seed" `Quick
              test_outcome_pure;
          ] );
        ( "generators",
          [
            Alcotest.test_case "descriptor deterministic" `Quick
              test_descriptor_deterministic;
            Alcotest.test_case "instantiate deterministic" `Quick
              test_instantiate_deterministic;
            Alcotest.test_case "every kind reachable" `Quick
              test_every_kind_reachable;
            Alcotest.test_case "capacities feasible" `Quick
              test_capacity_always_feasible;
            to_alcotest prop_instantiate_valid;
          ] );
        ( "properties",
          [
            to_alcotest prop_nearest_valid_and_dominates_lb;
            to_alcotest prop_evaluator_metamorphic;
            to_alcotest prop_clock_tight;
            to_alcotest prop_brute_bounds;
          ] );
        ( "sim-invariant",
          [
            Alcotest.test_case "clean run is silent" `Quick test_sim_clean_run;
            Alcotest.test_case "detects an infeasible clock" `Quick
              test_sim_detects_infeasible_clock;
            Alcotest.test_case "finalize reports missing executions" `Quick
              test_sim_finalize_completeness;
            Alcotest.test_case "detects a wrong interaction time" `Quick
              test_sim_detects_wrong_delta;
          ] );
      ]
  in
  try run ()
  with exn ->
    Printf.eprintf
      "\nconformance ran with qcheck seed %d — rerun with DIA_QCHECK_SEED=%d to reproduce\n"
      seed seed;
    raise exn
