(* Fault injection end to end: the Distributed-Greedy protocol run over
   an unreliable network — seeded 20% message loss plus one mid-run
   server crash — terminates with a valid assignment onto the surviving
   servers, within a small factor of the fault-free run, and the Dynamic
   session quantifies the same failover against a fresh re-solve.

   Run with: dune exec examples/failover.exe *)

module Placement = Dia_placement.Placement
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Dynamic = Dia_core.Dynamic
module Fault = Dia_sim.Fault
module Checker = Dia_sim.Checker
module Dgreedy_protocol = Dia_sim.Dgreedy_protocol

let () =
  let n = 40 and k = 4 in
  let matrix = Dia_latency.Synthetic.internet_like ~seed:12 n in
  let servers = Placement.random ~seed:12 ~k ~n in
  let p = Problem.all_nodes_clients matrix ~servers in
  Printf.printf "instance: %d clients, %d servers\n\n" n k;

  (* Baseline: the protocol over a reliable network. *)
  let clean = Dgreedy_protocol.run p in
  Printf.printf "fault-free run:   D = %7.2f ms  (%d messages, %d moves)\n"
    clean.objective clean.messages clean.modifications;

  (* The same protocol under seeded faults: 20% uniform loss, and server
     1 crashes mid-way through the modification rounds (faulty runs
     stretch the bootstrap horizon to 3x the settle time). Same seed =>
     same run. *)
  let crash_at = Dgreedy_protocol.settle_time p *. 4. in
  let plan =
    Fault.all [ Fault.loss ~rate:0.2 (); Fault.crash ~at:crash_at 1 ]
  in
  let fault = Fault.instantiate ~seed:1 plan in
  let faulty = Dgreedy_protocol.run ~fault p in
  Printf.printf "20%% loss + crash: D = %7.2f ms  (%d messages, %d moves)\n\n"
    faulty.objective faulty.messages faulty.modifications;
  let f = faulty.faults in
  Printf.printf
    "fault report: %d dropped, %d duplicated, %d retransmissions,\n\
    \              %d give-ups, %d token regenerations, %d failovers\n\n"
    f.dropped f.duplicated f.retransmissions f.give_ups f.regenerations
    f.failovers;

  let live s = not (Fault.down fault ~now:faulty.wall_duration s) in
  (match Checker.validate_assignment ~live p faulty.assignment with
  | Ok () ->
      Printf.printf
        "surviving assignment is valid: every client on a live server,\n\
         capacity respected\n"
  | Error e -> Printf.printf "INVALID surviving assignment: %s\n" e);
  Printf.printf "degradation vs fault-free protocol run: %.3fx\n\n"
    (faulty.objective /. clean.objective);

  (* The Dynamic (online) view of the same failure: migrate server 1's
     clients greedily and compare against re-solving from scratch. *)
  let t = Dynamic.create matrix ~servers in
  for node = 0 to n - 1 do
    ignore (Dynamic.join t ~node)
  done;
  ignore (Dynamic.rebalance t);
  let report = Dynamic.fail_server_report t 1 in
  Printf.printf
    "dynamic session failover of server 1:\n\
    \  %d clients migrated; D %.2f -> %.2f ms\n\
    \  fresh Greedy re-solve on survivors: %.2f ms\n\
    \  degradation factor (migrated / re-solved): %.3fx\n"
    report.Dynamic.migrated report.Dynamic.objective_before
    report.Dynamic.objective_after report.Dynamic.objective_resolve
    report.Dynamic.factor
