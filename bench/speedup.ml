(* Kernel-speedup smoke check.

   Times the two kernels named by ROADMAP item 3 — assign/greedy(n=300)
   and lower-bound/pruned(n=300) — on the exact instance the bechamel
   suite uses, and compares against the committed pre-refactor numbers in
   bench/BENCH.seed.json. Exits non-zero if either kernel's win over the
   seed drops below the --min factor (default 3.0: the refactor targets
   >= 5x on a quiet machine; CI runners are noisy, so the gate is
   deliberately generous).

   Timing is best-of-N wall clock after warmup — the minimum is the right
   statistic for a regression gate because noise only ever adds time. *)

module Problem = Dia_core.Problem
module Placement = Dia_placement.Placement

let usage =
  "speedup [--seed-json PATH] [--min FACTOR] [--runs N] [--journal-max-overhead F]"
let seed_json = ref "bench/BENCH.seed.json"
let min_factor = ref 3.0
let runs = ref 12
let journal_max_overhead = ref 0.10

let () =
  Arg.parse
    [
      ("--seed-json", Arg.Set_string seed_json, "seed BENCH.json to compare against");
      ("--min", Arg.Set_float min_factor, "minimum acceptable speedup factor");
      ("--runs", Arg.Set_int runs, "timed repetitions (best-of)");
      ( "--journal-max-overhead",
        Arg.Set_float journal_max_overhead,
        "max tolerated write-ahead-journal overhead on the churn kernel \
         (fraction, default 0.10)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let after ~key line =
  let kl = String.length key and ll = String.length line in
  let rec go i =
    if i + kl > ll then None
    else if String.sub line i kl = key then Some (i + kl)
    else go (i + 1)
  in
  go 0

(* Pull "ns_per_run" for a kernel out of the seed JSON by string scanning
   — the file is machine-written with one kernel per line, and a JSON
   dependency is not worth it for a smoke tool. *)
let seed_ns name =
  let needle = Printf.sprintf "\"name\": \"%s\"" name in
  let ic = open_in !seed_json in
  let found = ref None in
  (try
     while !found = None do
       let line = input_line ic in
       if contains ~needle line then
         match after ~key:"\"ns_per_run\": " line with
         | None -> ()
         | Some start ->
             let stop = ref start in
             while
               !stop < String.length line
               && (match line.[!stop] with
                  | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
                  | _ -> false)
             do
               incr stop
             done;
             found := float_of_string_opt (String.sub line start (!stop - start))
     done
   with End_of_file -> ());
  close_in ic;
  match !found with
  | Some ns -> ns
  | None ->
      Printf.eprintf "speedup: kernel %S not found in %s\n" name !seed_json;
      exit 2

let best_of_wall f =
  for _ = 1 to 3 do
    ignore (Sys.opaque_identity (f ()))
  done;
  let best = ref infinity in
  for _ = 1 to !runs do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9

let () =
  (* The exact instance the bechamel kernels time. *)
  let matrix = Dia_latency.Synthetic.internet_like ~seed:3 300 in
  let servers = Placement.random ~seed:3 ~k:20 ~n:300 in
  let p = Problem.all_nodes_clients matrix ~servers in
  let kernels =
    [
      ("assign/greedy(n=300,k=20)", fun () -> ignore (Dia_core.Greedy.assign p));
      ("lower-bound/pruned(n=300)", fun () -> ignore (Dia_core.Lower_bound.compute p));
    ]
  in
  let ok = ref true in
  List.iter
    (fun (name, f) ->
      let seed = seed_ns name in
      let now = best_of_wall f in
      let factor = seed /. now in
      let verdict = if factor >= !min_factor then "OK" else "TOO SLOW" in
      if factor < !min_factor then ok := false;
      Printf.printf "%-32s seed %10.0f ns   now %10.0f ns   speedup %5.2fx   [%s]\n"
        name seed now factor verdict)
    kernels;
  if not !ok then begin
    Printf.eprintf
      "speedup: a kernel fell below the %.1fx gate (refactor target: 5x)\n"
      !min_factor;
    exit 1
  end

(* Journal-overhead gate: the durability layer's per-event tax on the
   churn/steady-state kernel — the same steady Dynamic session the
   bechamel suite holds, with and without a write-ahead append per
   event. Buffered framing + CRC against the null device, exactly what
   the soak loop pays between flushes; the gate fails if it costs more
   than --journal-max-overhead of the plain batch. *)
let () =
  let nodes = 400 in
  let matrix = Dia_latency.Synthetic.internet_like ~seed:6 nodes in
  let servers = Placement.random ~seed:6 ~k:10 ~n:nodes in
  let make_kernel ~journal =
    let session = Dia_core.Dynamic.create matrix ~servers in
    let live = Queue.create () in
    for i = 0 to 999 do
      Queue.add (Dia_core.Dynamic.join session ~node:(i mod nodes)) live
    done;
    let w =
      if journal then
        Some
          (Dia_runtime.Journal.create ~path:Filename.null ~digest:"gate"
             ~base:0 ())
      else None
    in
    let cursor = ref 0 in
    fun () ->
      for _ = 1 to 50 do
        Dia_core.Dynamic.leave session (Queue.pop live);
        let node = !cursor mod nodes in
        incr cursor;
        Queue.add (Dia_core.Dynamic.join session ~node) live;
        match w with
        | Some w ->
            Dia_runtime.Journal.append w ~cursor:!cursor
              "t=12.5 join session=421 client=87 server=3\n"
        | None -> ()
      done;
      ignore (Dia_core.Dynamic.rebalance ~max_moves:8 session)
  in
  (* The verdict is a ratio of two close numbers, so the kernels are
     timed in interleaved rounds: frequency drift or a noisy neighbour
     lands on both mins instead of skewing one side of the ratio. *)
  let plain_kernel = make_kernel ~journal:false in
  let journal_kernel = make_kernel ~journal:true in
  for _ = 1 to 3 do
    ignore (Sys.opaque_identity (plain_kernel ()));
    ignore (Sys.opaque_identity (journal_kernel ()))
  done;
  let plain = ref infinity and journaled = ref infinity in
  for _ = 1 to 3 * !runs do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (plain_kernel ()));
    let t1 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (journal_kernel ()));
    let t2 = Unix.gettimeofday () in
    if t1 -. t0 < !plain then plain := t1 -. t0;
    if t2 -. t1 < !journaled then journaled := t2 -. t1
  done;
  let plain = !plain *. 1e9 and journaled = !journaled *. 1e9 in
  let overhead = (journaled -. plain) /. plain in
  let verdict = if overhead <= !journal_max_overhead then "OK" else "TOO SLOW" in
  Printf.printf
    "%-32s plain %9.0f ns   journaled %9.0f ns   overhead %+5.1f%%   [%s]\n"
    "churn/steady-state+journal" plain journaled (100. *. overhead) verdict;
  if overhead > !journal_max_overhead then begin
    Printf.eprintf
      "speedup: write-ahead journalling costs %.1f%% on the churn kernel \
       (gate: %.0f%%)\n"
      (100. *. overhead)
      (100. *. !journal_max_overhead);
    exit 1
  end
