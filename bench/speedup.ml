(* Kernel-speedup smoke check.

   Times the two kernels named by ROADMAP item 3 — assign/greedy(n=300)
   and lower-bound/pruned(n=300) — on the exact instance the bechamel
   suite uses, and compares against the committed pre-refactor numbers in
   bench/BENCH.seed.json. Exits non-zero if either kernel's win over the
   seed drops below the --min factor (default 3.0: the refactor targets
   >= 5x on a quiet machine; CI runners are noisy, so the gate is
   deliberately generous).

   Timing is best-of-N wall clock after warmup — the minimum is the right
   statistic for a regression gate because noise only ever adds time. *)

module Problem = Dia_core.Problem
module Placement = Dia_placement.Placement

let usage = "speedup [--seed-json PATH] [--min FACTOR] [--runs N]"
let seed_json = ref "bench/BENCH.seed.json"
let min_factor = ref 3.0
let runs = ref 12

let () =
  Arg.parse
    [
      ("--seed-json", Arg.Set_string seed_json, "seed BENCH.json to compare against");
      ("--min", Arg.Set_float min_factor, "minimum acceptable speedup factor");
      ("--runs", Arg.Set_int runs, "timed repetitions (best-of)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let after ~key line =
  let kl = String.length key and ll = String.length line in
  let rec go i =
    if i + kl > ll then None
    else if String.sub line i kl = key then Some (i + kl)
    else go (i + 1)
  in
  go 0

(* Pull "ns_per_run" for a kernel out of the seed JSON by string scanning
   — the file is machine-written with one kernel per line, and a JSON
   dependency is not worth it for a smoke tool. *)
let seed_ns name =
  let needle = Printf.sprintf "\"name\": \"%s\"" name in
  let ic = open_in !seed_json in
  let found = ref None in
  (try
     while !found = None do
       let line = input_line ic in
       if contains ~needle line then
         match after ~key:"\"ns_per_run\": " line with
         | None -> ()
         | Some start ->
             let stop = ref start in
             while
               !stop < String.length line
               && (match line.[!stop] with
                  | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
                  | _ -> false)
             do
               incr stop
             done;
             found := float_of_string_opt (String.sub line start (!stop - start))
     done
   with End_of_file -> ());
  close_in ic;
  match !found with
  | Some ns -> ns
  | None ->
      Printf.eprintf "speedup: kernel %S not found in %s\n" name !seed_json;
      exit 2

let best_of_wall f =
  for _ = 1 to 3 do
    ignore (Sys.opaque_identity (f ()))
  done;
  let best = ref infinity in
  for _ = 1 to !runs do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9

let () =
  (* The exact instance the bechamel kernels time. *)
  let matrix = Dia_latency.Synthetic.internet_like ~seed:3 300 in
  let servers = Placement.random ~seed:3 ~k:20 ~n:300 in
  let p = Problem.all_nodes_clients matrix ~servers in
  let kernels =
    [
      ("assign/greedy(n=300,k=20)", fun () -> ignore (Dia_core.Greedy.assign p));
      ("lower-bound/pruned(n=300)", fun () -> ignore (Dia_core.Lower_bound.compute p));
    ]
  in
  let ok = ref true in
  List.iter
    (fun (name, f) ->
      let seed = seed_ns name in
      let now = best_of_wall f in
      let factor = seed /. now in
      let verdict = if factor >= !min_factor then "OK" else "TOO SLOW" in
      if factor < !min_factor then ok := false;
      Printf.printf "%-32s seed %10.0f ns   now %10.0f ns   speedup %5.2fx   [%s]\n"
        name seed now factor verdict)
    kernels;
  if not !ok then begin
    Printf.eprintf
      "speedup: a kernel fell below the %.1fx gate (refactor target: 5x)\n"
      !min_factor;
    exit 1
  end
