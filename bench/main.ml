(* Benchmark and reproduction harness.

   Two halves:

   1. Figure regeneration — prints the rows/series of every figure in the
      paper's evaluation (Figs. 7, 8, 9, 10), at the profile named by the
      DIA_PROFILE environment variable (quick | default | full; default
      "quick" so `dune exec bench/main.exe` completes in minutes on one
      core — `full` is the paper's exact scale).

   2. Bechamel micro-benchmarks — one Test.make per experiment kernel and
      per ablation called out in DESIGN.md: fast vs naive objective
      evaluation, pruned vs naive lower bound, the four assignment
      algorithms, and the two K-center placements. Plus a quality (not
      time) ablation: Distributed-Greedy initialised from Nearest-Server
      vs from a random assignment. *)

open Bechamel

module Algorithm = Dia_core.Algorithm
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound
module Placement = Dia_placement.Placement
module Config = Dia_experiments.Config
module Pool = Dia_parallel.Pool

let profile =
  match Sys.getenv_opt "DIA_PROFILE" with
  | None -> Config.quick
  | Some name -> (
      match Config.profile_of_string name with
      | Some p -> p
      | None ->
          Printf.eprintf "unknown DIA_PROFILE %S; using quick\n" name;
          Config.quick)

let section title =
  Printf.printf "\n================ %s ================\n%!" title

(* -- Part 1: figure regeneration ---------------------------------------- *)

let regenerate_figures () =
  section "Fig. 7 — normalized interactivity vs number of servers";
  print_endline (Dia_experiments.Fig7.render (Dia_experiments.Fig7.run ~profile ()));
  section "Fig. 8 — CDF of normalized interactivity (random placement)";
  print_endline (Dia_experiments.Fig8.render (Dia_experiments.Fig8.run ~profile ()));
  section "Fig. 9 — Distributed-Greedy convergence";
  print_endline (Dia_experiments.Fig9.render (Dia_experiments.Fig9.run ~profile ()));
  section "Fig. 9 (extension) — convergence vs server count";
  print_endline
    (Dia_experiments.Fig9.render_sweep (Dia_experiments.Fig9.sweep ~profile ()));
  section "Fig. 10 — impact of server capacity";
  print_endline (Dia_experiments.Fig10.render (Dia_experiments.Fig10.run ~profile ()))

(* -- Quality ablation: Distributed-Greedy initialisation ----------------- *)

let dgreedy_init_ablation () =
  section "Ablation — Distributed-Greedy initial assignment (quality, not time)";
  let matrix = Config.load_dataset Config.Meridian_like Config.quick in
  let table =
    Dia_stats.Table.make
      ~columns:[ "k"; "init=nearest D/LB"; "init=random D/LB"; "nearest mods"; "random mods" ]
  in
  List.iter
    (fun k ->
      let servers = Placement.random ~seed:1 ~k ~n:(Dia_latency.Matrix.dim matrix) in
      let p = Problem.all_nodes_clients matrix ~servers in
      let lb = Lower_bound.compute p in
      let from_nearest = Dia_core.Distributed_greedy.run p in
      let from_random =
        Dia_core.Distributed_greedy.run ~initial:(Assignment.random p ~seed:7) p
      in
      let score (r : Dia_core.Distributed_greedy.result) =
        Objective.max_interaction_path p r.assignment /. lb
      in
      Dia_stats.Table.add_row table
        [
          string_of_int k;
          Printf.sprintf "%.3f" (score from_nearest);
          Printf.sprintf "%.3f" (score from_random);
          string_of_int from_nearest.stats.modifications;
          string_of_int from_random.stats.modifications;
        ])
    [ 10; 20; 40; 80 ];
  Dia_stats.Table.print table

(* -- Related-work baseline: client-server-latency-only assignment ------- *)

let related_work_comparison () =
  section "Extension — related-work baseline (client-server latency only)";
  print_endline
    "(Section VI: prior work optimises only client-to-server latency; the\n\
     zone-based two-phase strategy implements it — and pays on the paper's\n\
     objective)";
  let matrix = Config.load_dataset Config.Meridian_like Config.quick in
  let table =
    Dia_stats.Table.make
      ~columns:[ "k"; "Zone-Based"; "Nearest-Server"; "Greedy"; "Distributed-Greedy" ]
  in
  List.iter
    (fun k ->
      let servers = Placement.random ~seed:2 ~k ~n:(Dia_latency.Matrix.dim matrix) in
      let p = Problem.all_nodes_clients matrix ~servers in
      let lb = Lower_bound.compute p in
      let score a = Objective.max_interaction_path p a /. lb in
      Dia_stats.Table.add_row table
        [
          string_of_int k;
          Printf.sprintf "%.3f" (score (Dia_core.Zone_based.assign p));
          Printf.sprintf "%.3f" (score (Dia_core.Nearest.assign p));
          Printf.sprintf "%.3f" (score (Dia_core.Greedy.assign p));
          Printf.sprintf "%.3f" (score (Dia_core.Distributed_greedy.assign p));
        ])
    [ 10; 20; 40; 80 ];
  Dia_stats.Table.print table

(* -- Robustness: protocol cost vs message loss rate ----------------------- *)

let fault_sweep () =
  section "Extension — Distributed-Greedy protocol under message loss";
  print_endline
    "(seeded fault injection; same instance at every loss rate — message\n\
     count and simulated wall-clock grow with loss while the reliable\n\
     transport keeps the final objective pinned to the fault-free run)";
  let n = 60 and k = 5 in
  let matrix = Dia_latency.Synthetic.internet_like ~seed:21 n in
  let servers = Placement.random ~seed:21 ~k ~n in
  let p = Problem.all_nodes_clients matrix ~servers in
  let table =
    Dia_stats.Table.make
      ~columns:
        [ "loss rate"; "final D"; "messages"; "retransmissions"; "dropped";
          "sim wall-clock (ms)" ]
  in
  List.iter
    (fun rate ->
      let fault =
        if rate = 0. then None
        else Some (Dia_sim.Fault.instantiate ~seed:21 (Dia_sim.Fault.loss ~rate ()))
      in
      let r = Dia_sim.Dgreedy_protocol.run ?fault p in
      Dia_stats.Table.add_row table
        [
          Printf.sprintf "%.2f" rate;
          Printf.sprintf "%.1f" r.Dia_sim.Dgreedy_protocol.objective;
          string_of_int r.Dia_sim.Dgreedy_protocol.messages;
          string_of_int r.Dia_sim.Dgreedy_protocol.faults.retransmissions;
          string_of_int r.Dia_sim.Dgreedy_protocol.faults.dropped;
          Printf.sprintf "%.0f" r.Dia_sim.Dgreedy_protocol.wall_duration;
        ])
    [ 0.; 0.05; 0.1; 0.2; 0.3 ];
  Dia_stats.Table.print table

(* -- Runtime scaling: one timed run per (n, algorithm) ------------------- *)

let scaling_table () =
  section "Extension — runtime scaling (one run each, CPU milliseconds)";
  let table =
    Dia_stats.Table.make
      ~columns:[ "n (k = n/20)"; "NSA"; "LFB"; "Greedy"; "D-Greedy"; "lower bound" ]
  in
  List.iter
    (fun n ->
      let k = max 2 (n / 20) in
      let matrix = Dia_latency.Synthetic.internet_like ~seed:9 n in
      let servers = Placement.random ~seed:9 ~k ~n in
      let p = Problem.all_nodes_clients matrix ~servers in
      let time f =
        let t0 = Sys.time () in
        ignore (f ());
        Printf.sprintf "%.1f" ((Sys.time () -. t0) *. 1000.)
      in
      Dia_stats.Table.add_row table
        [
          Printf.sprintf "%d" n;
          time (fun () -> Dia_core.Nearest.assign p);
          time (fun () -> Dia_core.Longest_first_batch.assign p);
          time (fun () -> Dia_core.Greedy.assign p);
          time (fun () -> Dia_core.Distributed_greedy.assign p);
          time (fun () -> Lower_bound.compute p);
        ])
    [ 100; 200; 400; 800; 1600 ];
  Dia_stats.Table.print table

(* -- Part 2: bechamel micro-benchmarks ----------------------------------- *)

(* A mid-sized instance so each timed kernel runs in well under a second. *)
let bench_matrix = Dia_latency.Synthetic.internet_like ~seed:3 300
let bench_servers = Placement.random ~seed:3 ~k:20 ~n:300
let bench_problem = Problem.all_nodes_clients bench_matrix ~servers:bench_servers
let bench_assignment = Dia_core.Nearest.assign bench_problem

(* Small instance for the naive-vs-fast comparisons (naive is O(n^2) /
   O(n^2 k^2) and would dominate the run otherwise). *)
let small_matrix = Dia_latency.Synthetic.internet_like ~seed:4 120
let small_servers = Placement.random ~seed:4 ~k:8 ~n:120
let small_problem = Problem.all_nodes_clients small_matrix ~servers:small_servers
let small_assignment = Dia_core.Nearest.assign small_problem

(* Churn-throughput kernels: a live Dynamic session held at a steady
   population while each run replays a balanced batch of leaves and
   joins plus one budgeted rebalance — the control plane's steady-state
   work. Clients share the 400 nodes of the matrix (many clients per
   node, as in a real deployment), so the population — not the matrix —
   is what scales. The id queue persists across runs: every run leaves
   the oldest [batch] clients and admits [batch] fresh ones, keeping
   the session size constant no matter how many times bechamel calls
   the kernel. *)
let churn_nodes = 400
let churn_matrix = Dia_latency.Synthetic.internet_like ~seed:6 churn_nodes
let churn_servers = Placement.random ~seed:6 ~k:10 ~n:churn_nodes

let make_churn_kernel ~clients =
  let session = Dia_core.Dynamic.create churn_matrix ~servers:churn_servers in
  let live = Queue.create () in
  for i = 0 to clients - 1 do
    Queue.add (Dia_core.Dynamic.join session ~node:(i mod churn_nodes)) live
  done;
  let batch = 50 in
  let cursor = ref 0 in
  fun () ->
    for _ = 1 to batch do
      Dia_core.Dynamic.leave session (Queue.pop live);
      let node = !cursor mod churn_nodes in
      incr cursor;
      Queue.add (Dia_core.Dynamic.join session ~node) live
    done;
    Dia_core.Dynamic.rebalance ~max_moves:8 session

(* Failover kernels: the same steady session, but each run takes down
   the currently most-loaded server (so the victim always carries a
   real population, whatever the redistribution dynamics did) and
   brings it back up. [promote] repairs with the O(1)-per-client
   standby promotion; the baseline pays the greedy full-migration path
   plus its Greedy re-solve report — the cost a control plane without
   standbys eats on every crash. *)
(* Weighted-churn kernel: the same steady-state batch, but the million
   sessions sit behind a coreset bucket layer, so the Dynamic only ever
   holds one member per occupied cell and each leave/join is a counter
   bump. The objective and lower bound are queried every batch — the
   incremental caches are the other half of what keeps this flat in the
   session count. *)
let make_weighted_churn_kernel ~clients ~eps =
  let w =
    Dia_coreset.Weighted.create ~seed:6 ~eps churn_matrix
      ~servers:churn_servers
  in
  let live = Queue.create () in
  for i = 0 to clients - 1 do
    let node = i mod churn_nodes in
    Dia_coreset.Weighted.add w ~node;
    Queue.add node live
  done;
  let batch = 50 in
  let cursor = ref 0 in
  fun () ->
    for _ = 1 to batch do
      Dia_coreset.Weighted.remove w ~node:(Queue.pop live);
      let node = !cursor mod churn_nodes in
      incr cursor;
      Dia_coreset.Weighted.add w ~node;
      Queue.add node live
    done;
    Dia_coreset.Weighted.objective w +. Dia_coreset.Weighted.lower_bound w

(* Coreset construction: bucket a 10k-client population (round-robin
   over the 400 nodes) and certify the radius — the O(|C|·|S|) offline
   path `dia assign --coreset-eps` pays once per instance. *)
let coreset_build_clients =
  Array.init 10_000 (fun i -> i mod churn_nodes)

(* Durability kernels. journal/append measures the write-ahead hot path
   the soak loop pays per event batch — record framing, CRC-32 and the
   batched flush — against the null device, so the number is the
   journalling cost itself, not the disk. recovery/replay measures the
   read side: parsing and CRC-verifying a 10k-record journal, the work
   `--resume --state-dir` does before the deterministic re-execution. *)
let journal_payload =
  "t=12.5 join session=421 client=87 server=3\nt=12.5 drained session=17 \
   client=88 server=1\n"

let make_journal_append_kernel ~batch =
  let w =
    Dia_runtime.Journal.create ~path:Filename.null ~digest:"bench" ~base:0 ()
  in
  let cursor = ref 0 in
  fun () ->
    for _ = 1 to batch do
      Dia_runtime.Journal.append w ~cursor:!cursor journal_payload;
      incr cursor
    done

let replay_journal_path =
  let path = Filename.temp_file "dia_bench_journal" ".wal" in
  let w = Dia_runtime.Journal.create ~path ~digest:"bench" ~base:0 () in
  for cursor = 0 to 9_999 do
    Dia_runtime.Journal.append w ~cursor journal_payload
  done;
  Dia_runtime.Journal.close w;
  path

let make_failover_kernel ~clients ~promote =
  let session = Dia_core.Dynamic.create churn_matrix ~servers:churn_servers in
  for i = 0 to clients - 1 do
    ignore (Dia_core.Dynamic.join session ~node:(i mod churn_nodes))
  done;
  let k = Array.length churn_servers in
  fun () ->
    let victim = ref 0 in
    for s = 1 to k - 1 do
      if Dia_core.Dynamic.load session s > Dia_core.Dynamic.load session !victim
      then victim := s
    done;
    (if promote then ignore (Dia_core.Dynamic.promote_standby session !victim)
     else ignore (Dia_core.Dynamic.fail_server_report session !victim));
    Dia_core.Dynamic.recover_server session !victim

let tests =
  [
    Test.make ~name:"objective/fast(n=120)" (Staged.stage (fun () ->
        Objective.max_interaction_path small_problem small_assignment));
    Test.make ~name:"objective/naive(n=120)" (Staged.stage (fun () ->
        Objective.naive_max_interaction_path small_problem small_assignment));
    Test.make ~name:"lower-bound/pruned(n=120)" (Staged.stage (fun () ->
        Lower_bound.compute small_problem));
    Test.make ~name:"lower-bound/naive(n=120)" (Staged.stage (fun () ->
        Lower_bound.naive small_problem));
    Test.make ~name:"assign/nearest(n=300,k=20)" (Staged.stage (fun () ->
        Dia_core.Nearest.assign bench_problem));
    Test.make ~name:"assign/lfb(n=300,k=20)" (Staged.stage (fun () ->
        Dia_core.Longest_first_batch.assign bench_problem));
    Test.make ~name:"assign/greedy(n=300,k=20)" (Staged.stage (fun () ->
        Dia_core.Greedy.assign bench_problem));
    Test.make ~name:"assign/greedy-load(n=300,k=20)" (Staged.stage (fun () ->
        Dia_core.Greedy.assign_load ~delay:(Dia_core.Delay.Queueing { mu = 40. })
          bench_problem));
    Test.make ~name:"assign/greedy-reference(n=300,k=20)" (Staged.stage (fun () ->
        Dia_core.Greedy.assign_reference bench_problem));
    Test.make ~name:"assign/dgreedy(n=300,k=20)" (Staged.stage (fun () ->
        Dia_core.Distributed_greedy.assign bench_problem));
    Test.make ~name:"objective/fast(n=300)" (Staged.stage (fun () ->
        Objective.max_interaction_path bench_problem bench_assignment));
    Test.make ~name:"delay/objective(n=300)" (Staged.stage (fun () ->
        Objective.max_interaction_path_load bench_problem
          ~delay:(Dia_core.Delay.Queueing { mu = 40. }) bench_assignment));
    Test.make ~name:"lower-bound/pruned(n=300)" (Staged.stage (fun () ->
        Lower_bound.compute bench_problem));
    Test.make ~name:"placement/kcenter-2approx(n=300,k=20)" (Staged.stage (fun () ->
        Dia_placement.Kcenter.two_approx bench_matrix ~k:20));
    Test.make ~name:"placement/kcenter-greedy(n=300,k=20)" (Staged.stage (fun () ->
        Dia_placement.Kcenter.greedy bench_matrix ~k:20));
    Test.make ~name:"clock/synthesize(n=300,k=20)" (Staged.stage (fun () ->
        Dia_core.Clock.synthesize bench_problem bench_assignment));
    Test.make ~name:"search/hill-climb(n=120,k=8)" (Staged.stage (fun () ->
        Dia_core.Local_search.hill_climb small_problem small_assignment));
    Test.make ~name:"vivaldi/embed(n=120,r=15)" (Staged.stage (fun () ->
        Dia_latency.Vivaldi.embed_matrix ~rounds:15 small_matrix));
    Test.make ~name:"topology/transit-stub(n=400)" (Staged.stage (fun () ->
        Dia_latency.Topology.generate ~seed:1 ()));
    Test.make ~name:"sim/protocol-round(n=120,k=8)" (Staged.stage (fun () ->
        let clock = Dia_core.Clock.synthesize small_problem small_assignment in
        let workload = Dia_sim.Workload.burst ~clients:120 ~at:0. in
        Dia_sim.Protocol.run small_problem small_assignment clock workload));
    Test.make ~name:"sim/dgreedy-protocol(n=120,k=8)" (Staged.stage (fun () ->
        Dia_sim.Dgreedy_protocol.run small_problem));
    Test.make ~name:"churn/steady-state(clients=1000)"
      (Staged.stage (make_churn_kernel ~clients:1_000));
    Test.make ~name:"churn/steady-state(clients=10000)"
      (Staged.stage (make_churn_kernel ~clients:10_000));
    Test.make ~name:"churn/steady-state(weighted n=1M)"
      (Staged.stage (make_weighted_churn_kernel ~clients:1_000_000 ~eps:0.1));
    Test.make ~name:"coreset/build(clients=10000,k=10)"
      (Staged.stage (fun () ->
           Dia_coreset.Coreset.build ~seed:6 ~eps:0.1 churn_matrix
             ~servers:churn_servers ~clients:coreset_build_clients));
    Test.make ~name:"journal/append(batch=50)"
      (Staged.stage (make_journal_append_kernel ~batch:50));
    Test.make ~name:"recovery/replay(n=10k)"
      (Staged.stage (fun () ->
           match Dia_runtime.Journal.read replay_journal_path with
           | Ok j -> List.length j.Dia_runtime.Journal.records
           | Error m -> failwith m));
    Test.make ~name:"failover/promote(clients=1000)"
      (Staged.stage (make_failover_kernel ~clients:1_000 ~promote:true));
    Test.make ~name:"failover/resolve(clients=1000)"
      (Staged.stage (make_failover_kernel ~clients:1_000 ~promote:false));
    Test.make ~name:"failover/promote(clients=10000)"
      (Staged.stage (make_failover_kernel ~clients:10_000 ~promote:true));
    Test.make ~name:"failover/resolve(clients=10000)"
      (Staged.stage (make_failover_kernel ~clients:10_000 ~promote:false));
  ]

(* -- Quality ablation: achievable optimum (annealing) vs the lower bound -- *)

let achievable_gap_ablation () =
  section "Ablation — how loose is the super-optimal lower bound?";
  print_endline
    "(the paper normalises against an unachievable bound; simulated annealing\n\
     gives an achievable reference, so gap-to-annealed isolates real\n\
     suboptimality from bound looseness)";
  let table =
    Dia_stats.Table.make
      ~columns:[ "instance"; "LB"; "annealed D"; "greedy D"; "dgreedy D";
                 "annealed/LB"; "greedy/annealed" ]
  in
  List.iter
    (fun (seed, n, k) ->
      let matrix = Dia_latency.Synthetic.internet_like ~seed n in
      let servers = Placement.random ~seed ~k ~n in
      let p = Problem.all_nodes_clients matrix ~servers in
      let lb = Lower_bound.compute p in
      let greedy = Objective.max_interaction_path p (Dia_core.Greedy.assign p) in
      let dgreedy =
        Objective.max_interaction_path p (Dia_core.Distributed_greedy.assign p)
      in
      (* Anneal from the best heuristic start: best-ever tracking makes
         the result an upper bound on both, i.e. a true achievable
         reference. *)
      let start =
        if greedy <= dgreedy then Dia_core.Greedy.assign p
        else Dia_core.Distributed_greedy.assign p
      in
      (* Restarts fan out over the DIA_JOBS pool; the selected result is
         identical for any pool size. *)
      let _, annealed =
        Pool.with_pool (fun pool ->
            Dia_core.Local_search.anneal_restarts ~pool ~restarts:4 p start)
      in
      Dia_stats.Table.add_row table
        [
          Printf.sprintf "n=%d k=%d seed=%d" n k seed;
          Printf.sprintf "%.1f" lb;
          Printf.sprintf "%.1f" annealed;
          Printf.sprintf "%.1f" greedy;
          Printf.sprintf "%.1f" dgreedy;
          Printf.sprintf "%.3f" (annealed /. lb);
          Printf.sprintf "%.3f" (greedy /. annealed);
        ])
    [ (1, 150, 10); (2, 150, 10); (3, 200, 15); (4, 250, 20) ];
  Dia_stats.Table.print table

let measure_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols (List.hd instances) results in
      Hashtbl.fold
        (fun name ols_result acc ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> est
            | _ -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
          in
          (name, time_ns, r2) :: acc)
        analyzed [])
    tests

let run_benchmarks measurements =
  section "Micro-benchmarks (bechamel; time per run, OLS on monotonic clock)";
  let table = Dia_stats.Table.make ~columns:[ "benchmark"; "time/run"; "r^2" ] in
  List.iter
    (fun (name, time_ns, r2) ->
      let pretty =
        if time_ns >= 1e9 then Printf.sprintf "%.3f s" (time_ns /. 1e9)
        else if time_ns >= 1e6 then Printf.sprintf "%.3f ms" (time_ns /. 1e6)
        else if time_ns >= 1e3 then Printf.sprintf "%.3f us" (time_ns /. 1e3)
        else Printf.sprintf "%.1f ns" time_ns
      in
      Dia_stats.Table.add_row table [ name; pretty; Printf.sprintf "%.4f" r2 ])
    measurements;
  Dia_stats.Table.print table

(* -- Parallel scaling: the lib/parallel ablation -------------------------- *)

(* Wall-clock (not CPU) time: the whole point is the fan-out across
   domains. Best of [reps] to shave scheduler noise. *)
let wall_best ?(reps = 3) f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

type scaling_row = {
  kernel : string;
  sjobs : int;
  wall_s : float;
  speedup : float;  (* vs the jobs = 1 row of the same kernel *)
  contended : bool; (* jobs > usable cores: domains time-slice one CPU,
                       so the "speedup" measures scheduling overhead,
                       not parallelism. Tagged so downstream tooling
                       never reads these rows as a scaling regression. *)
}

let scaling_jobs = [ 1; 2; 4 ]

(* Two wall-time-dominant kernels from the acceptance list: the pruned
   lower bound on a 600-node instance, and the Fig 8 seed sweep. *)
let measure_scaling () =
  let n = 600 in
  let matrix = Dia_latency.Synthetic.internet_like ~seed:11 n in
  let servers = Placement.random ~seed:11 ~k:30 ~n in
  let p = Problem.all_nodes_clients matrix ~servers in
  let sweep_profile =
    { Config.quick with Config.label = "bench-sweep"; nodes = Some 120;
      runs = 12; fixed_servers = 12 }
  in
  let kernels =
    [
      ("lower-bound(n=600,k=30)",
       fun pool -> ignore (Lower_bound.compute ~pool p));
      ("fig8-seed-sweep(n=120,runs=12)",
       fun pool ->
         ignore
           (Dia_experiments.Fig8.run ~profile:sweep_profile
              ~jobs:(Pool.jobs pool) ()));
    ]
  in
  let cores = Domain.recommended_domain_count () in
  List.concat_map
    (fun (kernel, f) ->
      let base = ref nan in
      List.map
        (fun jobs ->
          let wall = Pool.with_pool ~jobs (fun pool -> wall_best (fun () -> f pool)) in
          if jobs = 1 then base := wall;
          { kernel; sjobs = jobs; wall_s = wall; speedup = !base /. wall;
            contended = jobs > cores })
        scaling_jobs)
    kernels

let print_scaling rows =
  section "Extension — lib/parallel scaling (wall seconds, best of 3)";
  Printf.printf "(host reports %d usable core(s))\n"
    (Domain.recommended_domain_count ());
  let table =
    Dia_stats.Table.make ~columns:[ "kernel"; "jobs"; "wall (s)"; "speedup" ]
  in
  List.iter
    (fun r ->
      Dia_stats.Table.add_row table
        [ r.kernel; string_of_int r.sjobs; Printf.sprintf "%.3f" r.wall_s;
          Printf.sprintf "%.2f%s" r.speedup (if r.contended then "*" else "") ])
    rows;
  Dia_stats.Table.print table;
  if List.exists (fun r -> r.contended) rows then
    Printf.printf
      "(* = contended: more jobs than cores; the row measures scheduling \
       overhead, not parallel speedup)\n"

(* -- Machine-readable output: BENCH.json ---------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let write_bench_json ~path measurements scaling =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  (* schema 2: parallel_scaling rows carry a "contended" flag — true
     when the row ran more jobs than the host has cores, in which case
     its "speedup" is a scheduling-overhead measurement and must not be
     compared against genuinely parallel runs. *)
  out "  \"schema\": 2,\n";
  out "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"kernels\": [\n";
  List.iteri
    (fun i (name, ns, r2) ->
      out "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s}%s\n"
        (json_escape name) (json_float ns) (json_float r2)
        (if i = List.length measurements - 1 then "" else ","))
    measurements;
  out "  ],\n";
  out "  \"parallel_scaling\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"kernel\": \"%s\", \"jobs\": %d, \"wall_s\": %s, \"speedup\": %s, \
         \"contended\": %b}%s\n"
        (json_escape r.kernel) r.sjobs (json_float r.wall_s) (json_float r.speedup)
        r.contended
        (if i = List.length scaling - 1 then "" else ","))
    scaling;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s (%d kernels, %d scaling rows)\n" path
    (List.length measurements) (List.length scaling)

let () =
  let json_mode = Array.exists (( = ) "json") Sys.argv in
  if json_mode then begin
    (* Machine-readable mode: skip figure regeneration, emit BENCH.json
       for the PR-over-PR perf trajectory. *)
    Printf.printf "dia bench harness (json mode)\n%!";
    let measurements = measure_benchmarks () in
    let scaling = measure_scaling () in
    print_scaling scaling;
    write_bench_json ~path:"BENCH.json" measurements scaling
  end
  else begin
    Printf.printf "dia bench harness (profile: %s)\n" profile.Config.label;
    regenerate_figures ();
    dgreedy_init_ablation ();
    achievable_gap_ablation ();
    related_work_comparison ();
    fault_sweep ();
    scaling_table ();
    print_scaling (measure_scaling ());
    run_benchmarks (measure_benchmarks ())
  end
